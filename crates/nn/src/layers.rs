//! Sequential network layers and their exact backward passes.
//!
//! Layers are a closed enum rather than a trait object so that a whole
//! [`crate::Network`] derives `Serialize`/`Deserialize` and models can be
//! cached on disk between experiment runs.

use dcn_tensor::{
    col2im, im2col, im2col_into, matmul_into, matmul_nt, matmul_tn, scratch, Conv2dGeometry,
    Tensor,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{NnError, Result};

/// `x.map(f)` written into a scratch buffer — the inference-path twin of
/// [`Tensor::map`] used by the activation layers. Bitwise identical to the
/// training path because it applies the very same closure element by element.
fn map_into(x: &Tensor, f: impl Fn(f32) -> f32) -> Result<Tensor> {
    let mut out = scratch::take(x.len());
    for (o, &v) in out.iter_mut().zip(x.data()) {
        *o = f(v);
    }
    Ok(Tensor::from_vec(x.shape().to_vec(), out)?)
}

/// Per-layer activation cache produced by a training-mode forward pass and
/// consumed by the matching backward pass.
///
/// Callers never construct caches themselves; they come out of
/// [`crate::Network::forward_train`].
#[derive(Debug, Clone)]
pub enum LayerCache {
    /// Dense layer: the layer input, flattened to `[N, In]`.
    Dense {
        /// Input activations.
        input: Tensor,
    },
    /// Conv layer: the `im2col` patch matrix and the batch size.
    Conv2d {
        /// Patch matrix `[N·OH·OW, C·KH·KW]`.
        cols: Tensor,
        /// Batch size of the forward pass.
        batch: usize,
    },
    /// ReLU: which inputs were positive.
    Relu {
        /// 1.0 where the input was `> 0`, else 0.0.
        mask: Tensor,
    },
    /// Sigmoid: the layer *output* (its derivative is `y·(1−y)`).
    Sigmoid {
        /// Output activations.
        output: Tensor,
    },
    /// Tanh: the layer *output* (its derivative is `1−y²`).
    Tanh {
        /// Output activations.
        output: Tensor,
    },
    /// Max pool: winning input offsets and the input shape.
    MaxPool2d {
        /// For each output element, the linear offset of the max input.
        argmax: Vec<usize>,
        /// Shape of the layer input.
        in_shape: Vec<usize>,
    },
    /// Flatten: the original input shape.
    Flatten {
        /// Shape of the layer input.
        in_shape: Vec<usize>,
    },
}

/// Gradients of a layer's parameters: `(weights, bias)` where applicable.
pub type ParamGrads = Option<(Tensor, Tensor)>;

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

/// Fully connected affine layer: `y = x·W + b`.
///
/// Weights are stored `[In, Out]`, bias `[Out]`, initialized with the He
/// scheme (`N(0, 2/In)`), which suits the ReLU networks used throughout the
/// paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    w: Tensor,
    b: Tensor,
}

impl Dense {
    /// Creates a dense layer with He-initialized weights and zero bias.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Result<Self> {
        if in_dim == 0 || out_dim == 0 {
            return Err(NnError::InvalidConfig(format!(
                "dense dims must be positive, got {in_dim}x{out_dim}"
            )));
        }
        let std = (2.0 / in_dim as f32).sqrt();
        Ok(Dense {
            w: Tensor::randn(&[in_dim, out_dim], 0.0, std, rng),
            b: Tensor::zeros(&[out_dim]),
        })
    }

    /// Creates a dense layer from explicit weights `[In, Out]` and bias
    /// `[Out]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the shapes are inconsistent.
    pub fn from_params(w: Tensor, b: Tensor) -> Result<Self> {
        if w.rank() != 2 || b.rank() != 1 || w.shape()[1] != b.shape()[0] {
            return Err(NnError::InvalidConfig(format!(
                "dense params must be [in,out] and [out], got {:?} and {:?}",
                w.shape(),
                b.shape()
            )));
        }
        Ok(Dense { w, b })
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.shape()[0]
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.shape()[1]
    }

    /// The weight matrix, `[in, out]` (read-only; the quantized inference
    /// path snapshots it at load).
    pub fn weights(&self) -> &Tensor {
        &self.w
    }

    /// The bias vector, `[out]`.
    pub fn bias(&self) -> &Tensor {
        &self.b
    }

    fn forward(&self, x: &Tensor) -> Result<(Tensor, LayerCache)> {
        let y = self.affine(x)?;
        Ok((
            y,
            LayerCache::Dense { input: x.clone() },
        ))
    }

    fn affine(&self, x: &Tensor) -> Result<Tensor> {
        let mut y = x.matmul(&self.w)?;
        let (n, out) = (y.shape()[0], y.shape()[1]);
        let bd = self.b.data();
        let yd = y.data_mut();
        for i in 0..n {
            for j in 0..out {
                yd[i * out + j] += bd[j];
            }
        }
        Ok(y)
    }

    /// [`Dense::affine`] writing into a scratch buffer: same matmul kernel,
    /// same bias loop, zero allocations once the pool is warm.
    fn infer(&self, x: &Tensor) -> Result<Tensor> {
        let rows = if x.rank() == 2 { x.shape()[0] } else { 0 };
        let mut y = scratch::take(rows * self.out_dim());
        let (n, out) = match matmul_into(x, &self.w, &mut y) {
            Ok(dims) => dims,
            Err(e) => {
                scratch::recycle(y);
                return Err(e.into());
            }
        };
        let bd = self.b.data();
        for i in 0..n {
            for j in 0..out {
                y[i * out + j] += bd[j];
            }
        }
        Ok(Tensor::from_vec(vec![n, out], y)?)
    }

    fn backward(&self, grad: &Tensor, cache: &LayerCache) -> Result<(Tensor, ParamGrads)> {
        let LayerCache::Dense { input } = cache else {
            return Err(NnError::LayerInput("dense backward with wrong cache".into()));
        };
        let dw = matmul_tn(input, grad)?;
        let out = grad.shape()[1];
        let mut db = vec![0.0f32; out];
        for row in grad.data().chunks_exact(out) {
            for (acc, &g) in db.iter_mut().zip(row) {
                *acc += g;
            }
        }
        let dx = matmul_nt(grad, &self.w)?;
        Ok((dx, Some((dw, Tensor::from_vec(vec![out], db)?))))
    }
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution with a square kernel, lowered to `im2col` + matmul.
///
/// Weights are stored as `[C·KH·KW, OutC]`; bias `[OutC]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    w: Tensor,
    b: Tensor,
    geom: Conv2dGeometry,
    out_channels: usize,
}

impl Conv2d {
    /// Creates a convolution layer with He-initialized weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero `out_channels` and
    /// propagates invalid geometry.
    pub fn new<R: Rng + ?Sized>(
        geom: Conv2dGeometry,
        out_channels: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if out_channels == 0 {
            return Err(NnError::InvalidConfig("out_channels must be positive".into()));
        }
        let fan_in = geom.patch_len();
        let std = (2.0 / fan_in as f32).sqrt();
        Ok(Conv2d {
            w: Tensor::randn(&[fan_in, out_channels], 0.0, std, rng),
            b: Tensor::zeros(&[out_channels]),
            geom,
            out_channels,
        })
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geom
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn forward(&self, x: &Tensor) -> Result<(Tensor, LayerCache)> {
        let batch = x.shape()[0];
        let cols = im2col(x, &self.geom)?;
        let y = self.apply_cols(&cols, batch)?;
        Ok((y, LayerCache::Conv2d { cols, batch }))
    }

    /// cols `[N·OH·OW, patch]` → output `[N, OutC, OH, OW]` with bias.
    fn apply_cols(&self, cols: &Tensor, batch: usize) -> Result<Tensor> {
        let y_cols = cols.matmul(&self.w)?; // [N·OH·OW, OutC]
        let (oh, ow, oc) = (self.geom.out_h(), self.geom.out_w(), self.out_channels);
        let hw = oh * ow;
        let mut out = vec![0.0f32; batch * oc * hw];
        let yd = y_cols.data();
        let bd = self.b.data();
        for img in 0..batch {
            for pos in 0..hw {
                let row = (img * hw + pos) * oc;
                for ch in 0..oc {
                    out[img * oc * hw + ch * hw + pos] = yd[row + ch] + bd[ch];
                }
            }
        }
        Ok(Tensor::from_vec(vec![batch, oc, oh, ow], out)?)
    }

    /// [`Conv2d::forward`] without the cache, with every intermediate — the
    /// patch matrix, the pre-bias GEMM output, and the relaid result —
    /// drawn from and recycled to the thread's scratch pool.
    fn infer(&self, x: &Tensor) -> Result<Tensor> {
        let batch = x.shape().first().copied().unwrap_or(0);
        let (oh, ow, oc) = (self.geom.out_h(), self.geom.out_w(), self.out_channels);
        let hw = oh * ow;
        let patch = self.geom.patch_len();
        let mut cols = scratch::take(batch * hw * patch);
        let rows = match im2col_into(x, &self.geom, &mut cols) {
            Ok(rows) => rows,
            Err(e) => {
                scratch::recycle(cols);
                return Err(e.into());
            }
        };
        let cols = Tensor::from_vec(vec![rows, patch], cols)?;
        let mut ycols = scratch::take(rows * oc);
        let res = matmul_into(&cols, &self.w, &mut ycols);
        scratch::recycle(cols.into_vec());
        if let Err(e) = res {
            scratch::recycle(ycols);
            return Err(e.into());
        }
        // Same NCHW relayout + bias as `apply_cols`, writing into scratch.
        let mut out = scratch::take(batch * oc * hw);
        let bd = self.b.data();
        for img in 0..batch {
            for pos in 0..hw {
                let row = (img * hw + pos) * oc;
                for ch in 0..oc {
                    out[img * oc * hw + ch * hw + pos] = ycols[row + ch] + bd[ch];
                }
            }
        }
        scratch::recycle(ycols);
        Ok(Tensor::from_vec(vec![batch, oc, oh, ow], out)?)
    }

    fn backward(&self, grad: &Tensor, cache: &LayerCache) -> Result<(Tensor, ParamGrads)> {
        let LayerCache::Conv2d { cols, batch } = cache else {
            return Err(NnError::LayerInput("conv backward with wrong cache".into()));
        };
        let (oh, ow, oc) = (self.geom.out_h(), self.geom.out_w(), self.out_channels);
        let hw = oh * ow;
        // Re-layout grad [N, OutC, OH, OW] → grad_cols [N·OH·OW, OutC].
        let gd = grad.data();
        let mut gcols = vec![0.0f32; batch * hw * oc];
        for img in 0..*batch {
            for ch in 0..oc {
                for pos in 0..hw {
                    gcols[(img * hw + pos) * oc + ch] = gd[img * oc * hw + ch * hw + pos];
                }
            }
        }
        let gcols = Tensor::from_vec(vec![batch * hw, oc], gcols)?;
        let dw = matmul_tn(cols, &gcols)?;
        let mut db = vec![0.0f32; oc];
        for row in gcols.data().chunks_exact(oc) {
            for (acc, &g) in db.iter_mut().zip(row) {
                *acc += g;
            }
        }
        let dcols = matmul_nt(&gcols, &self.w)?;
        let dx = col2im(&dcols, *batch, &self.geom)?;
        Ok((dx, Some((dw, Tensor::from_vec(vec![oc], db)?))))
    }
}

// ---------------------------------------------------------------------------
// Relu
// ---------------------------------------------------------------------------

/// Elementwise rectified linear unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Relu;

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu
    }

    fn forward(&self, x: &Tensor) -> Result<(Tensor, LayerCache)> {
        let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let y = x.map(|v| v.max(0.0));
        Ok((y, LayerCache::Relu { mask }))
    }

    fn backward(&self, grad: &Tensor, cache: &LayerCache) -> Result<(Tensor, ParamGrads)> {
        let LayerCache::Relu { mask } = cache else {
            return Err(NnError::LayerInput("relu backward with wrong cache".into()));
        };
        Ok((grad.mul(mask)?, None))
    }
}

// ---------------------------------------------------------------------------
// Sigmoid
// ---------------------------------------------------------------------------

/// Elementwise logistic sigmoid `σ(x) = 1/(1+e^{−x})`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Sigmoid;

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid
    }

    fn forward(&self, x: &Tensor) -> Result<(Tensor, LayerCache)> {
        let y = x.map(|v| 1.0 / (1.0 + (-v).exp()));
        Ok((y.clone(), LayerCache::Sigmoid { output: y }))
    }

    fn backward(&self, grad: &Tensor, cache: &LayerCache) -> Result<(Tensor, ParamGrads)> {
        let LayerCache::Sigmoid { output } = cache else {
            return Err(NnError::LayerInput("sigmoid backward with wrong cache".into()));
        };
        Ok((grad.zip(output, |g, y| g * y * (1.0 - y))?, None))
    }
}

// ---------------------------------------------------------------------------
// Tanh
// ---------------------------------------------------------------------------

/// Elementwise hyperbolic tangent — the natural output activation for
/// decoders reconstructing inputs in the workspace's `[-0.5, 0.5]` pixel box
/// (train against targets scaled by 2, or wrap with a 0.5 scale outside).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Tanh;

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh
    }

    fn forward(&self, x: &Tensor) -> Result<(Tensor, LayerCache)> {
        let y = x.map(f32::tanh);
        Ok((y.clone(), LayerCache::Tanh { output: y }))
    }

    fn backward(&self, grad: &Tensor, cache: &LayerCache) -> Result<(Tensor, ParamGrads)> {
        let LayerCache::Tanh { output } = cache else {
            return Err(NnError::LayerInput("tanh backward with wrong cache".into()));
        };
        Ok((grad.zip(output, |g, y| g * (1.0 - y * y))?, None))
    }
}

// ---------------------------------------------------------------------------
// MaxPool2d
// ---------------------------------------------------------------------------

/// Non-overlapping max pooling with a square `k×k` window and stride `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxPool2d {
    k: usize,
}

impl MaxPool2d {
    /// Creates a `k×k` max-pool layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `k == 0`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(NnError::InvalidConfig("pool kernel must be positive".into()));
        }
        Ok(MaxPool2d { k })
    }

    /// Window extent.
    pub fn kernel(&self) -> usize {
        self.k
    }

    fn dims(&self, x: &Tensor) -> Result<(usize, usize, usize, usize)> {
        if x.rank() != 4 {
            return Err(NnError::LayerInput(format!(
                "max-pool expects [N,C,H,W], got rank {}",
                x.rank()
            )));
        }
        let dims = x.shape();
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        if h < self.k || w < self.k {
            return Err(NnError::LayerInput(format!(
                "pool window {} exceeds input {h}x{w}",
                self.k
            )));
        }
        Ok((n, c, h, w))
    }

    fn forward(&self, x: &Tensor) -> Result<(Tensor, LayerCache)> {
        let (n, c, h, w) = self.dims(x)?;
        let k = self.k;
        let (oh, ow) = (h / k, w / k);
        let xd = x.data();
        let mut out = vec![0.0f32; n * c * oh * ow];
        let mut argmax = vec![0usize; n * c * oh * ow];
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_off = 0;
                        for dy in 0..k {
                            for dx in 0..k {
                                let off = base + (oy * k + dy) * w + (ox * k + dx);
                                if xd[off] > best {
                                    best = xd[off];
                                    best_off = off;
                                }
                            }
                        }
                        let o = ((img * c + ch) * oh + oy) * ow + ox;
                        out[o] = best;
                        argmax[o] = best_off;
                    }
                }
            }
        }
        Ok((
            Tensor::from_vec(vec![n, c, oh, ow], out)?,
            LayerCache::MaxPool2d {
                argmax,
                in_shape: x.shape().to_vec(),
            },
        ))
    }

    /// [`MaxPool2d::forward`] without the argmax cache, writing the pooled
    /// maxima straight into a scratch buffer. The window scan keeps the
    /// strict `>` comparison order, so ties and NaN handling match the
    /// training path bit for bit.
    fn infer(&self, x: &Tensor) -> Result<Tensor> {
        let (n, c, h, w) = self.dims(x)?;
        let k = self.k;
        let (oh, ow) = (h / k, w / k);
        let xd = x.data();
        let mut out = scratch::take(n * c * oh * ow);
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for dy in 0..k {
                            for dx in 0..k {
                                let off = base + (oy * k + dy) * w + (ox * k + dx);
                                if xd[off] > best {
                                    best = xd[off];
                                }
                            }
                        }
                        out[((img * c + ch) * oh + oy) * ow + ox] = best;
                    }
                }
            }
        }
        Ok(Tensor::from_vec(vec![n, c, oh, ow], out)?)
    }

    fn backward(&self, grad: &Tensor, cache: &LayerCache) -> Result<(Tensor, ParamGrads)> {
        let LayerCache::MaxPool2d { argmax, in_shape } = cache else {
            return Err(NnError::LayerInput("pool backward with wrong cache".into()));
        };
        let mut dx = Tensor::zeros(in_shape);
        let dxd = dx.data_mut();
        for (g, &src) in grad.data().iter().zip(argmax.iter()) {
            dxd[src] += g;
        }
        Ok((dx, None))
    }
}

// ---------------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------------

/// Flattens `[N, …]` to `[N, prod(…)]` ahead of dense layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Flatten;

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten
    }

    fn forward(&self, x: &Tensor) -> Result<(Tensor, LayerCache)> {
        let in_shape = x.shape().to_vec();
        let n = in_shape[0];
        let rest: usize = in_shape[1..].iter().product();
        Ok((
            x.reshape(&[n, rest])?,
            LayerCache::Flatten { in_shape },
        ))
    }

    /// Flatten into a scratch buffer (a plain copy), so the network loop can
    /// recycle the layer's input like any other intermediate.
    fn infer(&self, x: &Tensor) -> Result<Tensor> {
        let in_shape = x.shape();
        let n = in_shape[0];
        let rest: usize = in_shape[1..].iter().product();
        let mut out = scratch::take(x.len());
        out.copy_from_slice(x.data());
        Ok(Tensor::from_vec(vec![n, rest], out)?)
    }

    fn backward(&self, grad: &Tensor, cache: &LayerCache) -> Result<(Tensor, ParamGrads)> {
        let LayerCache::Flatten { in_shape } = cache else {
            return Err(NnError::LayerInput("flatten backward with wrong cache".into()));
        };
        Ok((grad.reshape(in_shape)?, None))
    }
}

// ---------------------------------------------------------------------------
// Layer enum
// ---------------------------------------------------------------------------

/// One layer of a sequential [`crate::Network`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Fully connected layer.
    Dense(Dense),
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Rectified linear unit.
    Relu(Relu),
    /// Logistic sigmoid.
    Sigmoid(Sigmoid),
    /// Hyperbolic tangent.
    Tanh(Tanh),
    /// Non-overlapping max pooling.
    MaxPool2d(MaxPool2d),
    /// Batch-preserving flatten.
    Flatten(Flatten),
}

impl Layer {
    /// Runs the layer forward, returning the output and a backward cache.
    ///
    /// # Errors
    ///
    /// Propagates shape and configuration errors from the layer.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, LayerCache)> {
        match self {
            Layer::Dense(l) => l.forward(x),
            Layer::Conv2d(l) => l.forward(x),
            Layer::Relu(l) => l.forward(x),
            Layer::Sigmoid(l) => l.forward(x),
            Layer::Tanh(l) => l.forward(x),
            Layer::MaxPool2d(l) => l.forward(x),
            Layer::Flatten(l) => l.forward(x),
        }
    }

    /// Runs the layer forward without keeping a cache (inference).
    ///
    /// Unlike [`Layer::forward`] this path draws every intermediate and the
    /// output itself from the calling thread's [`dcn_tensor::scratch`] pool,
    /// so a warm pool serves repeated inference without heap allocations.
    /// The returned tensor owns a pool buffer; callers on a hot loop should
    /// hand it back via `scratch::recycle(t.into_vec())` once done (dropping
    /// it instead is correct but forfeits the reuse). Outputs are bitwise
    /// identical to `self.forward(x)?.0` — pinned by tests.
    ///
    /// # Errors
    ///
    /// Propagates shape and configuration errors from the layer.
    pub fn infer(&self, x: &Tensor) -> Result<Tensor> {
        match self {
            Layer::Dense(l) => l.infer(x),
            Layer::Conv2d(l) => l.infer(x),
            Layer::Relu(_) => map_into(x, |v| v.max(0.0)),
            Layer::Sigmoid(_) => map_into(x, |v| 1.0 / (1.0 + (-v).exp())),
            Layer::Tanh(_) => map_into(x, f32::tanh),
            Layer::MaxPool2d(l) => l.infer(x),
            Layer::Flatten(l) => l.infer(x),
        }
    }

    /// Backward pass: maps the output gradient to (input gradient, parameter
    /// gradients).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerInput`] if `cache` came from a different layer
    /// type.
    pub fn backward(&self, grad: &Tensor, cache: &LayerCache) -> Result<(Tensor, ParamGrads)> {
        match self {
            Layer::Dense(l) => l.backward(grad, cache),
            Layer::Conv2d(l) => l.backward(grad, cache),
            Layer::Relu(l) => l.backward(grad, cache),
            Layer::Sigmoid(l) => l.backward(grad, cache),
            Layer::Tanh(l) => l.backward(grad, cache),
            Layer::MaxPool2d(l) => l.backward(grad, cache),
            Layer::Flatten(l) => l.backward(grad, cache),
        }
    }

    /// Immutable views of the layer's parameter tensors (weights then bias).
    pub fn params(&self) -> Vec<&Tensor> {
        match self {
            Layer::Dense(l) => vec![&l.w, &l.b],
            Layer::Conv2d(l) => vec![&l.w, &l.b],
            _ => vec![],
        }
    }

    /// Mutable views of the layer's parameter tensors (weights then bias).
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        match self {
            Layer::Dense(l) => vec![&mut l.w, &mut l.b],
            Layer::Conv2d(l) => vec![&mut l.w, &mut l.b],
            _ => vec![],
        }
    }

    /// Output shape (excluding batch) for a given input shape (excluding
    /// batch), used for construction-time validation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerInput`] if the input shape is incompatible.
    pub fn out_shape(&self, in_shape: &[usize]) -> Result<Vec<usize>> {
        match self {
            Layer::Dense(l) => {
                if in_shape != [l.in_dim()] {
                    return Err(NnError::LayerInput(format!(
                        "dense expects [{}], got {in_shape:?}",
                        l.in_dim()
                    )));
                }
                Ok(vec![l.out_dim()])
            }
            Layer::Conv2d(l) => {
                let g = &l.geom;
                let want = [g.in_channels(), g.in_h(), g.in_w()];
                if in_shape != want {
                    return Err(NnError::LayerInput(format!(
                        "conv expects {want:?}, got {in_shape:?}"
                    )));
                }
                Ok(vec![l.out_channels, g.out_h(), g.out_w()])
            }
            Layer::Relu(_) | Layer::Sigmoid(_) | Layer::Tanh(_) => Ok(in_shape.to_vec()),
            Layer::MaxPool2d(l) => {
                if in_shape.len() != 3 {
                    return Err(NnError::LayerInput(format!(
                        "pool expects [C,H,W], got {in_shape:?}"
                    )));
                }
                let (c, h, w) = (in_shape[0], in_shape[1], in_shape[2]);
                if h < l.k || w < l.k {
                    return Err(NnError::LayerInput(format!(
                        "pool window {} exceeds input {h}x{w}",
                        l.k
                    )));
                }
                Ok(vec![c, h / l.k, w / l.k])
            }
            Layer::Flatten(_) => Ok(vec![in_shape.iter().product()]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_forward_matches_hand_computation() {
        let w = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_slice(&[0.5, -0.5]);
        let l = Dense::from_params(w, b).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let (y, _) = l.forward(&x).unwrap();
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn dense_rejects_bad_params() {
        let w = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2]);
        assert!(Dense::from_params(w, b).is_err());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Dense::new(0, 3, &mut rng).is_err());
    }

    #[test]
    fn relu_masks_negatives_in_both_directions() {
        let l = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 2.0, -3.0, 4.0])
            .reshape(&[1, 4])
            .unwrap();
        let (y, cache) = l.forward(&x).unwrap();
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let g = Tensor::ones(&[1, 4]);
        let (dx, none) = l.backward(&g, &cache).unwrap();
        assert!(none.is_none());
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn maxpool_selects_window_maxima_and_routes_gradient() {
        let x = Tensor::from_vec(
            vec![1, 1, 2, 4],
            vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 8.0, 7.0],
        )
        .unwrap();
        let l = MaxPool2d::new(2).unwrap();
        let (y, cache) = l.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1, 1, 2]);
        assert_eq!(y.data(), &[5.0, 8.0]);
        let g = Tensor::from_vec(vec![1, 1, 1, 2], vec![10.0, 20.0]).unwrap();
        let (dx, _) = l.backward(&g, &cache).unwrap();
        assert_eq!(dx.get(&[0, 0, 0, 1]).unwrap(), 10.0); // where 5.0 lived
        assert_eq!(dx.get(&[0, 0, 1, 2]).unwrap(), 20.0); // where 8.0 lived
        assert_eq!(dx.sum(), 30.0);
    }

    #[test]
    fn maxpool_rejects_undersized_input() {
        let l = MaxPool2d::new(4).unwrap();
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(l.forward(&x).is_err());
        assert!(MaxPool2d::new(0).is_err());
    }

    #[test]
    fn flatten_round_trips_shape() {
        let l = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 5]);
        let (y, cache) = l.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 60]);
        let (dx, _) = l.backward(&y, &cache).unwrap();
        assert_eq!(dx.shape(), &[2, 3, 4, 5]);
    }

    #[test]
    fn conv_forward_known_kernel() {
        // 3x3 input, single 2x2 kernel of ones, no padding → sums of windows.
        let geom = Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Conv2d::new(geom, 1, &mut rng).unwrap();
        l.w = Tensor::ones(&[4, 1]);
        l.b = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(
            vec![1, 1, 3, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        )
        .unwrap();
        let (y, _) = l.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv_channel_layout_is_nchw() {
        let geom = Conv2dGeometry::new(1, 2, 2, 1, 1, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Conv2d::new(geom, 2, &mut rng).unwrap();
        // Two 1x1 kernels: identity and doubling.
        l.w = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]).unwrap();
        l.b = Tensor::from_slice(&[0.0, 100.0]);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let (y, _) = l.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 2, 2, 2]);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0, 102.0, 104.0, 106.0, 108.0]);
    }

    #[test]
    fn backward_rejects_mismatched_cache() {
        let mut rng = StdRng::seed_from_u64(0);
        let dense = Dense::new(2, 2, &mut rng).unwrap();
        let bad = LayerCache::Flatten { in_shape: vec![1, 2] };
        let g = Tensor::zeros(&[1, 2]);
        assert!(matches!(
            dense.backward(&g, &bad),
            Err(NnError::LayerInput(_))
        ));
    }

    #[test]
    fn out_shape_validates_and_chains() {
        let mut rng = StdRng::seed_from_u64(0);
        let geom = Conv2dGeometry::new(1, 8, 8, 3, 1, 0).unwrap();
        let conv = Layer::Conv2d(Conv2d::new(geom, 4, &mut rng).unwrap());
        let pool = Layer::MaxPool2d(MaxPool2d::new(2).unwrap());
        let flat = Layer::Flatten(Flatten::new());
        let s = conv.out_shape(&[1, 8, 8]).unwrap();
        assert_eq!(s, vec![4, 6, 6]);
        let s = pool.out_shape(&s).unwrap();
        assert_eq!(s, vec![4, 3, 3]);
        let s = flat.out_shape(&s).unwrap();
        assert_eq!(s, vec![36]);
        assert!(conv.out_shape(&[2, 8, 8]).is_err());
    }

    #[test]
    fn sigmoid_forward_backward() {
        let l = Sigmoid::new();
        let x = Tensor::from_slice(&[0.0, 100.0, -100.0]).reshape(&[1, 3]).unwrap();
        let (y, cache) = l.forward(&x).unwrap();
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        assert!(y.data()[1] > 0.999);
        assert!(y.data()[2] < 0.001);
        let g = Tensor::ones(&[1, 3]);
        let (dx, none) = l.backward(&g, &cache).unwrap();
        assert!(none.is_none());
        // σ'(0) = 0.25; saturated ends ≈ 0.
        assert!((dx.data()[0] - 0.25).abs() < 1e-6);
        assert!(dx.data()[1] < 1e-3);
    }

    #[test]
    fn tanh_forward_backward() {
        let l = Tanh::new();
        let x = Tensor::from_slice(&[0.0, 2.0]).reshape(&[1, 2]).unwrap();
        let (y, cache) = l.forward(&x).unwrap();
        assert_eq!(y.data()[0], 0.0);
        assert!((y.data()[1] - 2.0f32.tanh()).abs() < 1e-6);
        let g = Tensor::ones(&[1, 2]);
        let (dx, _) = l.backward(&g, &cache).unwrap();
        assert!((dx.data()[0] - 1.0).abs() < 1e-6); // tanh'(0) = 1
        assert!(dx.data()[1] < 0.1);
    }

    #[test]
    fn activation_layers_preserve_shape() {
        for layer in [Layer::Sigmoid(Sigmoid::new()), Layer::Tanh(Tanh::new())] {
            assert_eq!(layer.out_shape(&[4, 3, 3]).unwrap(), vec![4, 3, 3]);
            assert!(layer.params().is_empty());
        }
    }

    #[test]
    fn infer_is_bitwise_identical_to_forward_for_every_layer() {
        let mut rng = StdRng::seed_from_u64(42);
        let geom = Conv2dGeometry::new(2, 6, 6, 3, 1, 1).unwrap();
        let cases: Vec<(Layer, Tensor)> = vec![
            (
                Layer::Dense(Dense::new(5, 3, &mut rng).unwrap()),
                Tensor::randn(&[4, 5], 0.0, 1.0, &mut rng),
            ),
            (
                Layer::Conv2d(Conv2d::new(geom, 4, &mut rng).unwrap()),
                Tensor::randn(&[2, 2, 6, 6], 0.0, 1.0, &mut rng),
            ),
            (
                Layer::Relu(Relu::new()),
                Tensor::randn(&[3, 7], 0.0, 1.0, &mut rng),
            ),
            (
                Layer::Sigmoid(Sigmoid::new()),
                Tensor::randn(&[3, 7], 0.0, 2.0, &mut rng),
            ),
            (
                Layer::Tanh(Tanh::new()),
                Tensor::randn(&[3, 7], 0.0, 2.0, &mut rng),
            ),
            (
                Layer::MaxPool2d(MaxPool2d::new(2).unwrap()),
                Tensor::randn(&[2, 3, 4, 4], 0.0, 1.0, &mut rng),
            ),
            (
                Layer::Flatten(Flatten::new()),
                Tensor::randn(&[2, 3, 4, 4], 0.0, 1.0, &mut rng),
            ),
        ];
        for (layer, x) in cases {
            let (trained, _) = layer.forward(&x).unwrap();
            let inferred = layer.infer(&x).unwrap();
            assert_eq!(inferred.shape(), trained.shape(), "{layer:?}");
            for (a, b) in inferred.data().iter().zip(trained.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{layer:?}");
            }
        }
    }

    #[test]
    fn layer_serde_round_trip() {
        let mut rng = StdRng::seed_from_u64(9);
        let layer = Layer::Dense(Dense::new(3, 2, &mut rng).unwrap());
        let json = serde_json::to_string(&layer).unwrap();
        let back: Layer = serde_json::from_str(&json).unwrap();
        assert_eq!(layer, back);
    }
}
