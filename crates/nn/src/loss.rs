//! Losses and logit transforms.
//!
//! Two details matter for fidelity to the paper:
//!
//! * **Temperature.** Defensive distillation (§2.3) trains with
//!   `softmax(z / T)`; both hard- and soft-label cross-entropies here take a
//!   temperature parameter.
//! * **The CW objective.** The Carlini–Wagner attacks optimize
//!   `f(x') = max(max{Z(x')ᵢ : i ≠ t} − Z(x')ₜ, −κ)` over *logits*, not
//!   probabilities; [`cw_loss`] implements it with its subgradient.

use dcn_tensor::Tensor;

use crate::{NnError, Result};

/// Value and logit-gradient of a scalar loss over a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the logits, `[N, K]`.
    pub grad: Tensor,
}

/// Row-wise, numerically stable softmax with temperature.
///
/// `softmax(z, T)ᵢ = exp(zᵢ/T) / Σⱼ exp(zⱼ/T)`. `T = 1` is the ordinary
/// softmax; larger `T` produces the "soft labels" of defensive distillation.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if `temperature <= 0` or `logits` is
/// not rank-2.
///
/// # Examples
///
/// ```
/// use dcn_nn::softmax;
/// use dcn_tensor::Tensor;
/// # fn main() -> Result<(), dcn_nn::NnError> {
/// let z = Tensor::from_vec(vec![1, 3], vec![1.0, 2.0, 3.0])?;
/// let p = softmax(&z, 1.0)?;
/// assert!((p.sum() - 1.0).abs() < 1e-6);
/// assert_eq!(p.argmax()?, 2);
/// # Ok(())
/// # }
/// ```
pub fn softmax(logits: &Tensor, temperature: f32) -> Result<Tensor> {
    if temperature <= 0.0 || !temperature.is_finite() {
        return Err(NnError::InvalidConfig(format!(
            "temperature must be positive and finite, got {temperature}"
        )));
    }
    if logits.rank() != 2 {
        return Err(NnError::InvalidConfig(format!(
            "softmax expects [N, K] logits, got rank {}",
            logits.rank()
        )));
    }
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    let mut out = vec![0.0f32; n * k];
    for (row_in, row_out) in logits
        .data()
        .chunks_exact(k)
        .zip(out.chunks_exact_mut(k))
    {
        let m = row_in.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0;
        for (o, &z) in row_out.iter_mut().zip(row_in) {
            let e = ((z - m) / temperature).exp();
            *o = e;
            sum += e;
        }
        for o in row_out.iter_mut() {
            *o /= sum;
        }
    }
    Ok(Tensor::from_vec(vec![n, k], out)?)
}

/// Softmax cross-entropy against integer labels, with distillation
/// temperature, returning both the mean loss and its logit gradient.
///
/// The gradient of the mean loss is `(softmax(z/T) − onehot(y)) / (N·T)`.
///
/// # Errors
///
/// Returns [`NnError::Labels`] if `labels.len()` differs from the batch or a
/// label is out of range, and propagates [`softmax`] errors.
pub fn softmax_cross_entropy(
    logits: &Tensor,
    labels: &[usize],
    temperature: f32,
) -> Result<LossOutput> {
    let probs = softmax(logits, temperature)?;
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    if labels.len() != n {
        return Err(NnError::Labels(format!(
            "{} labels for batch of {n}",
            labels.len()
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
        return Err(NnError::Labels(format!("label {bad} out of range 0..{k}")));
    }
    let mut loss = 0.0;
    let mut grad = probs.clone();
    let gd = grad.data_mut();
    let scale = 1.0 / (n as f32 * temperature);
    for (i, &y) in labels.iter().enumerate() {
        let p = probs.data()[i * k + y].max(1e-12);
        loss -= p.ln();
        for j in 0..k {
            gd[i * k + j] *= scale;
        }
        gd[i * k + y] -= scale;
    }
    Ok(LossOutput {
        loss: loss / n as f32,
        grad,
    })
}

/// Cross-entropy against *soft* target distributions — the distilled-network
/// training objective (§2.3 of the paper).
///
/// `targets` is `[N, K]` of probabilities (each row summing to 1).
///
/// # Errors
///
/// Returns [`NnError::Labels`] on shape disagreement and propagates
/// [`softmax`] errors.
pub fn cross_entropy_soft(
    logits: &Tensor,
    targets: &Tensor,
    temperature: f32,
) -> Result<LossOutput> {
    if logits.shape() != targets.shape() {
        return Err(NnError::Labels(format!(
            "targets shape {:?} != logits shape {:?}",
            targets.shape(),
            logits.shape()
        )));
    }
    let probs = softmax(logits, temperature)?;
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    let mut loss = 0.0;
    for (p, t) in probs.data().iter().zip(targets.data().iter()) {
        if *t > 0.0 {
            loss -= t * p.max(1e-12).ln();
        }
    }
    let scale = 1.0 / (n as f32 * temperature);
    let mut grad = vec![0.0f32; n * k];
    for ((g, &p), &t) in grad
        .iter_mut()
        .zip(probs.data().iter())
        .zip(targets.data().iter())
    {
        *g = (p - t) * scale;
    }
    Ok(LossOutput {
        loss: loss / n as f32,
        grad: Tensor::from_vec(vec![n, k], grad)?,
    })
}

/// Mean-squared-error loss against a target tensor of the same shape,
/// with its output gradient.
///
/// `L = mean((y − t)²)`, `dL/dy = 2(y − t)/N` where `N` is the total
/// element count. This is the reconstruction objective used by the MagNet
/// autoencoder baseline.
///
/// # Errors
///
/// Returns [`NnError::Labels`] on shape disagreement or empty tensors.
pub fn mse_loss(output: &Tensor, target: &Tensor) -> Result<LossOutput> {
    if output.shape() != target.shape() {
        return Err(NnError::Labels(format!(
            "mse target shape {:?} != output shape {:?}",
            target.shape(),
            output.shape()
        )));
    }
    if output.is_empty() {
        return Err(NnError::Labels("mse over an empty tensor".into()));
    }
    let n = output.len() as f32;
    let mut loss = 0.0;
    let mut grad = Tensor::zeros(output.shape());
    for ((g, &y), &t) in grad
        .data_mut()
        .iter_mut()
        .zip(output.data().iter())
        .zip(target.data().iter())
    {
        let d = y - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    Ok(LossOutput {
        loss: loss / n,
        grad,
    })
}

/// The Carlini–Wagner margin objective on a single logit vector:
/// `f(z) = max(max{zᵢ : i ≠ target} − z_target, −κ)`.
///
/// Returns `(f, df/dz)`. `f ≤ 0` (with κ = 0) means the example is already
/// classified as `target` with the requested confidence margin.
///
/// # Errors
///
/// Returns [`NnError::Labels`] if `target` is out of range or the logits are
/// not rank-1 with at least two classes.
pub fn cw_loss(logits: &Tensor, target: usize, kappa: f32) -> Result<(f32, Tensor)> {
    if logits.rank() != 1 || logits.len() < 2 {
        return Err(NnError::Labels(format!(
            "cw loss expects a rank-1 logit vector with K >= 2, got {:?}",
            logits.shape()
        )));
    }
    let k = logits.len();
    if target >= k {
        return Err(NnError::Labels(format!(
            "target {target} out of range 0..{k}"
        )));
    }
    let z = logits.data();
    let mut best_other = usize::MAX;
    for i in 0..k {
        if i != target && (best_other == usize::MAX || z[i] > z[best_other]) {
            best_other = i;
        }
    }
    let margin = z[best_other] - z[target];
    let mut grad = Tensor::zeros(&[k]);
    if margin > -kappa {
        grad.data_mut()[best_other] = 1.0;
        grad.data_mut()[target] = -1.0;
        Ok((margin, grad))
    } else {
        Ok((-kappa, grad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits(rows: &[&[f32]]) -> Tensor {
        let k = rows[0].len();
        let data: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Tensor::from_vec(vec![rows.len(), k], data).unwrap()
    }

    #[test]
    fn softmax_rows_sum_to_one_and_preserve_argmax() {
        let z = logits(&[&[0.0, 1.0, -2.0], &[5.0, 5.0, 5.0]]);
        let p = softmax(&z, 1.0).unwrap();
        for row in p.data().chunks_exact(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert_eq!(p.argmax_rows().unwrap(), z.argmax_rows().unwrap());
    }

    #[test]
    fn softmax_is_stable_for_huge_logits() {
        let z = logits(&[&[1000.0, 999.0]]);
        let p = softmax(&z, 1.0).unwrap();
        assert!(p.all_finite());
        assert!(p.data()[0] > p.data()[1]);
    }

    #[test]
    fn high_temperature_flattens_distribution() {
        let z = logits(&[&[4.0, 0.0]]);
        let sharp = softmax(&z, 1.0).unwrap();
        let soft = softmax(&z, 100.0).unwrap();
        assert!(sharp.data()[0] > soft.data()[0]);
        assert!(soft.data()[0] > 0.5); // still ordered
    }

    #[test]
    fn softmax_rejects_bad_temperature() {
        let z = logits(&[&[0.0, 1.0]]);
        assert!(softmax(&z, 0.0).is_err());
        assert!(softmax(&z, -1.0).is_err());
        assert!(softmax(&z, f32::NAN).is_err());
    }

    #[test]
    fn cross_entropy_is_low_for_correct_confident_logits() {
        let z = logits(&[&[10.0, -10.0]]);
        let good = softmax_cross_entropy(&z, &[0], 1.0).unwrap();
        let bad = softmax_cross_entropy(&z, &[1], 1.0).unwrap();
        assert!(good.loss < 1e-3);
        assert!(bad.loss > 5.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_softmax_minus_onehot() {
        let z = logits(&[&[1.0, 2.0, 0.5]]);
        let out = softmax_cross_entropy(&z, &[1], 1.0).unwrap();
        let p = softmax(&z, 1.0).unwrap();
        let expect = [p.data()[0], p.data()[1] - 1.0, p.data()[2]];
        for (g, e) in out.grad.data().iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_validates_labels() {
        let z = logits(&[&[0.0, 1.0]]);
        assert!(softmax_cross_entropy(&z, &[2], 1.0).is_err());
        assert!(softmax_cross_entropy(&z, &[0, 1], 1.0).is_err());
    }

    #[test]
    fn soft_targets_reduce_to_hard_for_onehot() {
        let z = logits(&[&[1.0, -1.0, 0.0]]);
        let hard = softmax_cross_entropy(&z, &[2], 1.0).unwrap();
        let onehot = logits(&[&[0.0, 0.0, 1.0]]);
        let soft = cross_entropy_soft(&z, &onehot, 1.0).unwrap();
        assert!((hard.loss - soft.loss).abs() < 1e-6);
        assert_eq!(hard.grad, soft.grad);
    }

    #[test]
    fn soft_targets_validate_shape() {
        let z = logits(&[&[0.0, 1.0]]);
        let t = logits(&[&[0.0, 1.0, 0.0]]);
        assert!(cross_entropy_soft(&z, &t, 1.0).is_err());
    }

    #[test]
    fn mse_loss_value_and_gradient() {
        let y = Tensor::from_vec(vec![1, 4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let t = Tensor::from_vec(vec![1, 4], vec![1.0, 0.0, 3.0, 0.0]).unwrap();
        let out = mse_loss(&y, &t).unwrap();
        assert!((out.loss - (4.0 + 16.0) / 4.0).abs() < 1e-6);
        assert_eq!(out.grad.data(), &[0.0, 1.0, 0.0, 2.0]); // 2d/N
    }

    #[test]
    fn mse_loss_validates_shapes() {
        let y = Tensor::zeros(&[1, 4]);
        assert!(mse_loss(&y, &Tensor::zeros(&[1, 3])).is_err());
        assert!(mse_loss(&Tensor::zeros(&[0]), &Tensor::zeros(&[0])).is_err());
    }

    #[test]
    fn mse_is_zero_iff_exact() {
        let y = Tensor::from_slice(&[0.3, -0.2]).reshape(&[1, 2]).unwrap();
        let out = mse_loss(&y, &y).unwrap();
        assert_eq!(out.loss, 0.0);
        assert!(out.grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn cw_loss_margin_and_gradient() {
        let z = Tensor::from_slice(&[1.0, 5.0, 3.0]);
        // Target class 0: best other is 1, margin = 5 - 1 = 4.
        let (f, g) = cw_loss(&z, 0, 0.0).unwrap();
        assert_eq!(f, 4.0);
        assert_eq!(g.data(), &[-1.0, 1.0, 0.0]);
    }

    #[test]
    fn cw_loss_saturates_at_minus_kappa() {
        let z = Tensor::from_slice(&[10.0, 0.0, 0.0]);
        // Already classified 0 with margin 10 > kappa 5 → clamped, zero grad.
        let (f, g) = cw_loss(&z, 0, 5.0).unwrap();
        assert_eq!(f, -5.0);
        assert!(g.data().iter().all(|&x| x == 0.0));
        // With kappa 20 the margin constraint is still active.
        let (f2, _) = cw_loss(&z, 0, 20.0).unwrap();
        assert_eq!(f2, -10.0);
    }

    #[test]
    fn cw_loss_validates_input() {
        let z = Tensor::from_slice(&[1.0, 2.0]);
        assert!(cw_loss(&z, 2, 0.0).is_err());
        let scalar = Tensor::from_slice(&[1.0]);
        assert!(cw_loss(&scalar, 0, 0.0).is_err());
    }
}
