//! Crash-safe persistence: atomic writes, CRC32 integrity footers, and
//! resumable training checkpoints.
//!
//! The failure model is a process that can die at any instruction (SIGKILL,
//! OOM, power loss) plus a filesystem that can transiently fail. Guarantees:
//!
//! * **Atomicity.** [`write_atomic`] writes to a temporary file in the same
//!   directory and renames it over the destination. A reader sees either the
//!   complete old state or the complete new state, never a torn mixture —
//!   rename within a directory is atomic on POSIX filesystems.
//! * **Integrity.** [`seal`] appends a CRC32 footer line; [`unseal`] verifies
//!   it and distinguishes "corrupt" (bytes changed) from "malformed" (never
//!   valid). Legacy payloads without a footer pass through unchanged, so
//!   pre-existing model files keep loading.
//! * **Recovery.** [`read_with_retry`] absorbs transient read failures with
//!   the bounded, deterministically-jittered backoff from `dcn-fault`.
//!
//! The untyped primitives live in `dcn_fault::io` (shared with `dcn-data`);
//! this module wraps them in [`NnError`]. All IO funnels through `dcn_fault`
//! hooks so the fault-injection harness can produce synthetic errors, torn
//! writes, and corrupted bytes on demand.

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::{Network, NnError, Result};

pub use dcn_fault::{crc32, seal, RetryPolicy, CRC_FOOTER_PREFIX};

/// Verifies and strips the CRC32 footer, returning the payload.
///
/// Content without a footer is treated as a legacy unsealed payload and
/// returned unchanged — later parsing decides whether it is valid.
///
/// # Errors
///
/// Returns [`NnError::Corrupt`] when a footer is present but malformed or
/// its CRC does not match the payload.
pub fn unseal(content: &str) -> Result<&str> {
    dcn_fault::unseal(content).map_err(NnError::Corrupt)
}

/// Writes `bytes` to `path` atomically: stage into a sibling `.tmp` file,
/// flush, then rename over the destination. After a crash at any point the
/// destination holds either its previous content or the new content in full.
///
/// `site` names this call for diagnostics and deterministic fault injection
/// (`DCN_FAULT_IO` can fail it, `DCN_FAULT_SHORT_WRITE` can tear the staged
/// write before the rename — the destination is never torn).
///
/// # Errors
///
/// Returns [`NnError::Io`] on filesystem failure (real or injected).
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8], site: &str) -> Result<()> {
    dcn_fault::write_atomic(path, bytes, site).map_err(|e| NnError::io(site, &e))
}

/// Reads `path` to a string, retrying transient failures under `policy`.
///
/// # Errors
///
/// Returns [`NnError::Io`] when every attempt fails.
pub fn read_with_retry(
    path: impl AsRef<Path>,
    policy: &RetryPolicy,
    site: &str,
) -> Result<String> {
    dcn_fault::read_with_retry(path, policy, site).map_err(|e| NnError::io(site, &e))
}

/// A resumable training checkpoint: everything
/// [`crate::Trainer::fit_resumable`] needs to continue a run as if it was
/// never interrupted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Number of epochs fully completed (the next epoch to run).
    pub epoch: usize,
    /// Mean loss of each completed epoch, in order.
    pub epoch_losses: Vec<f32>,
    /// The model after `epoch` epochs.
    pub net: Network,
    /// Optimizer state from [`crate::Optimizer::export_state`], JSON-encoded.
    pub optimizer: String,
}

impl TrainCheckpoint {
    /// Writes the checkpoint atomically with a CRC32 integrity footer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serialization`] on encoder failure and
    /// [`NnError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let json =
            serde_json::to_string(self).map_err(|e| NnError::Serialization(e.to_string()))?;
        write_atomic(path, seal(&json).as_bytes(), "nn.checkpoint.write")
    }

    /// Loads and verifies a checkpoint written by [`TrainCheckpoint::save`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] on read failure, [`NnError::Corrupt`] on CRC
    /// mismatch, [`NnError::Serialization`] on malformed JSON, and
    /// [`NnError::NonFinite`] if the stored weights contain NaN/inf.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let content = read_with_retry(path, &RetryPolicy::default(), "nn.checkpoint.read")?;
        let payload = unseal(&content)?;
        let ckpt: TrainCheckpoint =
            serde_json::from_str(payload).map_err(|e| NnError::Serialization(e.to_string()))?;
        ckpt.net.validate_finite()?;
        Ok(ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn seal_unseal_round_trips() {
        let payload = "{\"k\": [1, 2, 3]}";
        let sealed = seal(payload);
        assert!(sealed.contains(CRC_FOOTER_PREFIX));
        assert_eq!(unseal(&sealed).unwrap(), payload);
    }

    #[test]
    fn unseal_passes_legacy_payloads_through() {
        assert_eq!(unseal("plain json").unwrap(), "plain json");
        assert_eq!(unseal("two\nlines").unwrap(), "two\nlines");
    }

    #[test]
    fn unseal_rejects_flipped_bits() {
        let sealed = seal("important weights");
        let tampered = sealed.replace("important", "impostant");
        assert!(matches!(unseal(&tampered), Err(NnError::Corrupt(_))));
        let bad_footer = format!("payload\n{CRC_FOOTER_PREFIX}zzzzzzzz");
        assert!(matches!(unseal(&bad_footer), Err(NnError::Corrupt(_))));
    }

    #[test]
    fn write_atomic_replaces_whole_file() {
        let dir = std::env::temp_dir().join("dcn_nn_ckpt_atomic_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        write_atomic(&path, b"first version", "t.atomic").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first version");
        write_atomic(&path, b"second", "t.atomic").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        assert!(
            !dcn_fault::temp_path(path.as_ref()).exists(),
            "temp file must not linger"
        );
        let _ = fs::remove_dir_all(dir);
    }
}
