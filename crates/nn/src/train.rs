//! Mini-batch training loop, including crash-safe epoch-granular resume.

use std::path::Path;

use dcn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{
    cross_entropy_soft, mse_loss, softmax_cross_entropy, Network, NnError, Optimizer, Result,
    TrainCheckpoint,
};

/// Configuration for [`Trainer`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the trailing partial batch is kept).
    pub batch_size: usize,
    /// Softmax temperature used by the loss; 1.0 for standard training,
    /// higher for defensive distillation.
    pub temperature: f32,
    /// Whether to reshuffle example order each epoch.
    pub shuffle: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            temperature: 1.0,
            shuffle: true,
        }
    }
}

/// Summary of a completed [`Trainer::fit`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss per epoch, in order.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Mean loss of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if the report is empty (zero epochs were run).
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().expect("at least one epoch")
    }
}

/// Mini-batch gradient-descent trainer for [`Network`].
///
/// Supports both hard integer labels ([`Trainer::fit`]) and soft target
/// distributions ([`Trainer::fit_soft`]), the latter being what defensive
/// distillation's second network trains against.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `net` on `(x, labels)` with hard labels.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Labels`] on label/batch disagreement,
    /// [`NnError::InvalidConfig`] for a zero batch size, and propagates
    /// forward/backward errors.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        x: &Tensor,
        labels: &[usize],
        opt: &mut dyn Optimizer,
        rng: &mut R,
    ) -> Result<TrainReport> {
        self.run(net, x, Targets::Hard(labels), opt, rng)
    }

    /// Trains `net` as a regressor against per-example target tensors (MSE
    /// loss) — e.g. an autoencoder with `targets == x`.
    ///
    /// `targets`' leading dimension must match `x`'s; the remaining
    /// dimensions must equal the network's output shape.
    ///
    /// # Errors
    ///
    /// As [`Trainer::fit`].
    pub fn fit_regression<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        x: &Tensor,
        targets: &Tensor,
        opt: &mut dyn Optimizer,
        rng: &mut R,
    ) -> Result<TrainReport> {
        self.run(net, x, Targets::Regression(targets), opt, rng)
    }

    /// Trains `net` against per-example soft target distributions `[N, K]`.
    ///
    /// # Errors
    ///
    /// As [`Trainer::fit`].
    pub fn fit_soft<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        x: &Tensor,
        targets: &Tensor,
        opt: &mut dyn Optimizer,
        rng: &mut R,
    ) -> Result<TrainReport> {
        self.run(net, x, Targets::Soft(targets), opt, rng)
    }

    /// Trains `net` on `(x, labels)` with hard labels, checkpointing after
    /// every epoch so an interrupted run can continue where it stopped.
    ///
    /// Unlike [`Trainer::fit`], randomness comes from `seed` rather than a
    /// caller-owned rng: the shuffle order of epoch `e` is derived from
    /// `(seed, e)` alone, so a run killed after epoch `k` and resumed from
    /// the checkpoint replays epochs `k+1..` with exactly the rng streams an
    /// uninterrupted run would have used — final weights are bitwise
    /// identical either way.
    ///
    /// If `checkpoint` exists it is loaded (CRC-verified) and training
    /// resumes from the recorded epoch; `net` and `opt` are overwritten with
    /// the checkpointed state. Otherwise training starts fresh. The returned
    /// report covers all epochs, including those completed before a resume.
    ///
    /// # Errors
    ///
    /// As [`Trainer::fit`], plus [`NnError::Io`] / [`NnError::Corrupt`] /
    /// [`NnError::NonFinite`] from checkpoint IO, and
    /// [`NnError::InvalidConfig`] if an existing checkpoint disagrees with
    /// the requested topology.
    pub fn fit_resumable(
        &mut self,
        net: &mut Network,
        x: &Tensor,
        labels: &[usize],
        opt: &mut dyn Optimizer,
        seed: u64,
        checkpoint: impl AsRef<Path>,
    ) -> Result<TrainReport> {
        if self.config.batch_size == 0 {
            return Err(NnError::InvalidConfig("batch_size must be positive".into()));
        }
        let n = x.shape().first().copied().unwrap_or(0);
        if labels.len() != n {
            return Err(NnError::Labels(format!(
                "{} labels for {n} examples",
                labels.len()
            )));
        }
        if n == 0 {
            return Err(NnError::Labels("empty training set".into()));
        }

        let ckpt_path = checkpoint.as_ref();
        let mut start_epoch = 0usize;
        let mut epoch_losses: Vec<f32> = Vec::with_capacity(self.config.epochs);
        if ckpt_path.exists() {
            let ckpt = TrainCheckpoint::load(ckpt_path)?;
            if ckpt.net.input_shape() != net.input_shape() {
                return Err(NnError::InvalidConfig(format!(
                    "checkpoint input shape {:?} != model input shape {:?}",
                    ckpt.net.input_shape(),
                    net.input_shape()
                )));
            }
            opt.import_state(&ckpt.optimizer)?;
            *net = ckpt.net;
            start_epoch = ckpt.epoch;
            epoch_losses = ckpt.epoch_losses;
            if dcn_obs::enabled() {
                dcn_obs::counter(dcn_obs::names::CHECKPOINT_RESUMES_TOTAL).inc();
            }
        }

        let examples = x.unstack()?;
        let mut completed_this_run = 0usize;
        for epoch in start_epoch..self.config.epochs {
            let epoch_start = dcn_obs::enabled().then(std::time::Instant::now);
            // Shuffle order depends only on (seed, epoch): resume replays
            // the exact stream a fresh run would draw for this epoch.
            let mut rng = StdRng::seed_from_u64(epoch_seed(seed, epoch));
            let mut order: Vec<usize> = (0..n).collect();
            if self.config.shuffle {
                order.shuffle(&mut rng);
            }
            let mut total = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let batch: Vec<Tensor> = chunk.iter().map(|&i| examples[i].clone()).collect();
                let bx = Tensor::stack(&batch)?;
                let (logits, caches) = net.forward_train(&bx)?;
                let bl: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                let loss_out = softmax_cross_entropy(&logits, &bl, self.config.temperature)?;
                let (_, grads) = net.backward(&loss_out.grad, &caches)?;
                let mut params = net.params_mut();
                opt.step(&mut params, &grads)?;
                total += loss_out.loss;
                batches += 1;
            }
            let mean_loss = total / batches as f32;
            if let Some(start) = epoch_start {
                use dcn_obs::names;
                dcn_obs::counter(names::TRAIN_EPOCHS_TOTAL).inc();
                dcn_obs::counter(names::TRAIN_BATCHES_TOTAL).add(batches as u64);
                dcn_obs::histogram(names::TRAIN_EPOCH_LOSS, dcn_obs::MAGNITUDE)
                    .observe(f64::from(mean_loss));
                dcn_obs::histogram(names::TRAIN_EPOCH_SECONDS, dcn_obs::LATENCY_SECONDS)
                    .observe(start.elapsed().as_secs_f64());
            }
            epoch_losses.push(mean_loss);
            TrainCheckpoint {
                epoch: epoch + 1,
                epoch_losses: epoch_losses.clone(),
                net: net.clone(),
                optimizer: opt.export_state()?,
            }
            .save(ckpt_path)?;
            completed_this_run += 1;
            // Deterministic crash simulation: the fault harness kills the
            // run here, after the checkpoint landed, exactly like a SIGKILL
            // between epochs.
            if let Some(limit) = dcn_fault::abort_after_epochs() {
                if completed_this_run >= limit && epoch + 1 < self.config.epochs {
                    return Err(NnError::Io {
                        site: "train.fit_resumable".to_string(),
                        kind: std::io::ErrorKind::Interrupted,
                        msg: format!("injected crash after {completed_this_run} epochs"),
                    });
                }
            }
        }
        Ok(TrainReport { epoch_losses })
    }

    fn run<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        x: &Tensor,
        targets: Targets<'_>,
        opt: &mut dyn Optimizer,
        rng: &mut R,
    ) -> Result<TrainReport> {
        if self.config.batch_size == 0 {
            return Err(NnError::InvalidConfig("batch_size must be positive".into()));
        }
        let n = x.shape().first().copied().unwrap_or(0);
        match &targets {
            Targets::Hard(l) if l.len() != n => {
                return Err(NnError::Labels(format!("{} labels for {n} examples", l.len())))
            }
            Targets::Soft(t) if t.shape().first().copied().unwrap_or(0) != n => {
                return Err(NnError::Labels(format!(
                    "{:?} soft targets for {n} examples",
                    t.shape()
                )))
            }
            Targets::Regression(t) if t.shape().first().copied().unwrap_or(0) != n => {
                return Err(NnError::Labels(format!(
                    "{:?} regression targets for {n} examples",
                    t.shape()
                )))
            }
            _ => {}
        }
        if n == 0 {
            return Err(NnError::Labels("empty training set".into()));
        }
        let examples = x.unstack()?;
        let target_rows = match &targets {
            Targets::Regression(t) => Some(t.unstack()?),
            _ => None,
        };
        let mut order: Vec<usize> = (0..n).collect();
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            let epoch_start = dcn_obs::enabled().then(std::time::Instant::now);
            if self.config.shuffle {
                order.shuffle(rng);
            }
            let mut total = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let batch: Vec<Tensor> =
                    chunk.iter().map(|&i| examples[i].clone()).collect();
                let bx = Tensor::stack(&batch)?;
                let (logits, caches) = net.forward_train(&bx)?;
                let loss_out = match &targets {
                    Targets::Hard(labels) => {
                        let bl: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                        softmax_cross_entropy(&logits, &bl, self.config.temperature)?
                    }
                    Targets::Soft(t) => {
                        let rows: Vec<Tensor> = chunk
                            .iter()
                            .map(|&i| t.row(i))
                            .collect::<std::result::Result<_, _>>()?;
                        let bt = Tensor::stack(&rows)?;
                        cross_entropy_soft(&logits, &bt, self.config.temperature)?
                    }
                    Targets::Regression(_) => {
                        let rows = target_rows.as_ref().expect("set for regression");
                        let batch_targets: Vec<Tensor> =
                            chunk.iter().map(|&i| rows[i].clone()).collect();
                        let bt = Tensor::stack(&batch_targets)?;
                        mse_loss(&logits, &bt)?
                    }
                };
                let (_, grads) = net.backward(&loss_out.grad, &caches)?;
                let mut params = net.params_mut();
                opt.step(&mut params, &grads)?;
                total += loss_out.loss;
                batches += 1;
            }
            let mean_loss = total / batches as f32;
            if let Some(start) = epoch_start {
                use dcn_obs::names;
                dcn_obs::counter(names::TRAIN_EPOCHS_TOTAL).inc();
                dcn_obs::counter(names::TRAIN_BATCHES_TOTAL).add(batches as u64);
                dcn_obs::histogram(names::TRAIN_EPOCH_LOSS, dcn_obs::MAGNITUDE)
                    .observe(f64::from(mean_loss));
                dcn_obs::histogram(names::TRAIN_EPOCH_SECONDS, dcn_obs::LATENCY_SECONDS)
                    .observe(start.elapsed().as_secs_f64());
            }
            epoch_losses.push(mean_loss);
        }
        Ok(TrainReport { epoch_losses })
    }
}

enum Targets<'a> {
    Hard(&'a [usize]),
    Soft(&'a Tensor),
    Regression(&'a Tensor),
}

/// Mixes `(seed, epoch)` into one 64-bit rng seed (SplitMix64 finalizer), so
/// each epoch draws an independent, reproducible shuffle stream.
///
/// Public because distributed trainers (`dcn-ps`) must reproduce this exact
/// stream to schedule the same batches in the same order as a single-process
/// [`Trainer::fit_resumable`] run — the bitwise-identity contract between
/// the two hangs on this one function.
pub fn epoch_seed(seed: u64, epoch: usize) -> u64 {
    let mut z = seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Dense, Layer, Relu, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blob_data(n_per: usize, rng: &mut StdRng) -> (Tensor, Vec<usize>) {
        // Two well-separated Gaussian blobs in 2-D.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per * 2 {
            let c = i % 2;
            let center = if c == 0 { -2.0 } else { 2.0 };
            rows.push(Tensor::randn(&[2], center, 0.5, rng));
            labels.push(c);
        }
        (Tensor::stack(&rows).unwrap(), labels)
    }

    fn small_net(rng: &mut StdRng) -> Network {
        let mut net = Network::new(vec![2]);
        net.push(Layer::Dense(Dense::new(2, 8, rng).unwrap()));
        net.push(Layer::Relu(Relu::new()));
        net.push(Layer::Dense(Dense::new(8, 2, rng).unwrap()));
        net
    }

    #[test]
    fn training_reduces_loss_and_learns_blobs() {
        let mut rng = StdRng::seed_from_u64(11);
        let (x, y) = two_blob_data(40, &mut rng);
        let mut net = small_net(&mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 16,
            ..Default::default()
        });
        let report = trainer
            .fit(&mut net, &x, &y, &mut Adam::new(0.01), &mut rng)
            .unwrap();
        assert!(report.final_loss() < report.epoch_losses[0]);
        let acc = crate::metrics::accuracy(&net.predict(&x).unwrap(), &y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn soft_target_training_matches_teacher_distribution() {
        let mut rng = StdRng::seed_from_u64(13);
        let (x, y) = two_blob_data(30, &mut rng);
        // Teacher targets: 0.9 / 0.1 soft labels.
        let n = y.len();
        let mut t = Tensor::zeros(&[n, 2]);
        for (i, &l) in y.iter().enumerate() {
            t.set(&[i, l], 0.9).unwrap();
            t.set(&[i, 1 - l], 0.1).unwrap();
        }
        let mut net = small_net(&mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 40,
            batch_size: 16,
            ..Default::default()
        });
        trainer
            .fit_soft(&mut net, &x, &t, &mut Adam::new(0.01), &mut rng)
            .unwrap();
        let acc = crate::metrics::accuracy(&net.predict(&x).unwrap(), &y);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn fit_validates_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = small_net(&mut rng);
        let x = Tensor::zeros(&[4, 2]);
        let mut opt = Sgd::new(0.1);
        let mut trainer = Trainer::new(TrainConfig::default());
        assert!(trainer
            .fit(&mut net, &x, &[0, 1], &mut opt, &mut rng)
            .is_err());
        let mut trainer = Trainer::new(TrainConfig {
            batch_size: 0,
            ..Default::default()
        });
        assert!(trainer
            .fit(&mut net, &x, &[0, 1, 0, 1], &mut opt, &mut rng)
            .is_err());
        let empty = Tensor::zeros(&[0, 2]);
        let mut trainer = Trainer::new(TrainConfig::default());
        assert!(trainer.fit(&mut net, &empty, &[], &mut opt, &mut rng).is_err());
    }

    #[test]
    fn regression_training_fits_an_autoencoder() {
        use crate::Tanh;
        let mut rng = StdRng::seed_from_u64(77);
        // Identity-ish task: reconstruct 4-d points in [-0.5, 0.5].
        let x = Tensor::rand_uniform(&[80, 4], -0.5, 0.5, &mut rng);
        let mut net = Network::new(vec![4]);
        net.push(Layer::Dense(Dense::new(4, 16, &mut rng).unwrap()));
        net.push(Layer::Relu(Relu::new()));
        net.push(Layer::Dense(Dense::new(16, 4, &mut rng).unwrap()));
        net.push(Layer::Tanh(Tanh::new()));
        // Targets scaled to tanh's comfortable range.
        let mut trainer = Trainer::new(TrainConfig { epochs: 120, batch_size: 20, ..Default::default() });
        let report = trainer
            .fit_regression(&mut net, &x, &x, &mut Adam::new(0.01), &mut rng)
            .unwrap();
        assert!(report.final_loss() < 0.01, "loss {}", report.final_loss());
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn regression_validates_target_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = small_net(&mut rng);
        let x = Tensor::zeros(&[4, 2]);
        let bad_targets = Tensor::zeros(&[3, 2]);
        let mut trainer = Trainer::new(TrainConfig::default());
        assert!(trainer
            .fit_regression(&mut net, &x, &bad_targets, &mut Sgd::new(0.1), &mut rng)
            .is_err());
    }

    #[test]
    fn resumed_training_matches_uninterrupted_run_bitwise() {
        let mut rng = StdRng::seed_from_u64(21);
        let (x, y) = two_blob_data(24, &mut rng);
        let net0 = small_net(&mut rng);
        let config = TrainConfig {
            epochs: 6,
            batch_size: 8,
            ..Default::default()
        };
        let dir = std::env::temp_dir().join("dcn_nn_resume_test");
        std::fs::create_dir_all(&dir).unwrap();

        // Reference: uninterrupted 6-epoch run.
        let full_ckpt = dir.join("full.ckpt");
        let _ = std::fs::remove_file(&full_ckpt);
        let mut full_net = net0.clone();
        let mut full_opt = Adam::new(0.01);
        let full_report = Trainer::new(config.clone())
            .fit_resumable(&mut full_net, &x, &y, &mut full_opt, 42, &full_ckpt)
            .unwrap();

        // Interrupted: crash (injected) after 3 epochs, then resume.
        let part_ckpt = dir.join("part.ckpt");
        let _ = std::fs::remove_file(&part_ckpt);
        let mut part_net = net0.clone();
        let mut part_opt = Adam::new(0.01);
        dcn_fault::set_plan(Some(dcn_fault::FaultPlan {
            abort_after_epochs: Some(3),
            ..dcn_fault::FaultPlan::default()
        }));
        let crash = Trainer::new(config.clone()).fit_resumable(
            &mut part_net,
            &x,
            &y,
            &mut part_opt,
            42,
            &part_ckpt,
        );
        dcn_fault::set_plan(None);
        assert!(matches!(crash, Err(NnError::Io { .. })), "got {crash:?}");

        let mut resumed_net = net0.clone();
        let mut resumed_opt = Adam::new(0.01);
        let resumed_report = Trainer::new(config)
            .fit_resumable(&mut resumed_net, &x, &y, &mut resumed_opt, 42, &part_ckpt)
            .unwrap();

        assert_eq!(full_net, resumed_net, "weights must match bitwise");
        assert_eq!(full_report, resumed_report);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fit_resumable_rejects_mismatched_checkpoint() {
        let mut rng = StdRng::seed_from_u64(22);
        let (x, y) = two_blob_data(8, &mut rng);
        let dir = std::env::temp_dir().join("dcn_nn_resume_mismatch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("model.ckpt");
        let _ = std::fs::remove_file(&ckpt);

        // Checkpoint trained on a 3-input model, resumed with a 2-input one.
        let mut wide = Network::new(vec![3]);
        wide.push(Layer::Dense(Dense::new(3, 2, &mut rng).unwrap()));
        crate::TrainCheckpoint {
            epoch: 1,
            epoch_losses: vec![1.0],
            net: wide,
            optimizer: Adam::new(0.01).export_state().unwrap(),
        }
        .save(&ckpt)
        .unwrap();

        let mut net = small_net(&mut rng);
        let r = Trainer::new(TrainConfig::default()).fit_resumable(
            &mut net,
            &x,
            &y,
            &mut Adam::new(0.01),
            0,
            &ckpt,
        );
        assert!(matches!(r, Err(NnError::InvalidConfig(_))), "got {r:?}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn zero_epochs_is_a_noop_report() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = small_net(&mut rng);
        let snapshot = net.clone();
        let (x, y) = two_blob_data(4, &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 0,
            ..Default::default()
        });
        let report = trainer
            .fit(&mut net, &x, &y, &mut Sgd::new(0.1), &mut rng)
            .unwrap();
        assert!(report.epoch_losses.is_empty());
        assert_eq!(net, snapshot);
    }
}
