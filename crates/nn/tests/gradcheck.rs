//! Numerical gradient checks.
//!
//! Every layer's analytic backward pass, and the full network's parameter and
//! input gradients, are verified against central finite differences. These
//! are the load-bearing tests of the workspace: every attack in
//! `dcn-attacks` trusts `Network::input_gradient`.

use dcn_nn::{
    softmax_cross_entropy, Conv2d, Dense, Flatten, Layer, MaxPool2d, Network, Relu,
};
use dcn_tensor::{Conv2dGeometry, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

// Probe step: small enough that a ±H nudge of a shared conv weight rarely
// crosses a ReLU/max-pool kink (which would poison the finite difference),
// large enough to stay above f32 cancellation noise.
const H: f32 = 1e-3;
const TOL: f32 = 3e-2;

/// Loss used for all checks: softmax cross-entropy against fixed labels.
fn loss_of(net: &Network, x: &Tensor, labels: &[usize]) -> f32 {
    let logits = net.forward(x).unwrap();
    softmax_cross_entropy(&logits, labels, 1.0).unwrap().loss
}

/// Central difference at two step sizes. Returns `None` when the two
/// estimates disagree, i.e. the probe crossed a ReLU / max-pool kink and the
/// finite difference itself cannot be trusted at this coordinate.
fn stable_numeric(mut eval: impl FnMut(f32) -> f32, orig: f32) -> Option<f32> {
    let d1 = (eval(orig + H) - eval(orig - H)) / (2.0 * H);
    let h2 = H / 4.0;
    let d2 = (eval(orig + h2) - eval(orig - h2)) / (2.0 * h2);
    let scale = d1.abs().max(d2.abs()).max(1.0);
    if (d1 - d2).abs() / scale < 5e-3 {
        Some(d2)
    } else {
        None
    }
}

/// Asserts the analytic gradient of the loss w.r.t. every parameter matches
/// central differences.
#[allow(clippy::needless_range_loop)] // params and grads indexed in lockstep
fn check_param_grads(net: &mut Network, x: &Tensor, labels: &[usize]) {
    let (logits, caches) = net.forward_train(x).unwrap();
    let lo = softmax_cross_entropy(&logits, labels, 1.0).unwrap();
    let (_, grads) = net.backward(&lo.grad, &caches).unwrap();
    let n_params = net.params().len();
    assert_eq!(grads.len(), n_params);
    let mut checked = 0usize;
    for pi in 0..n_params {
        let plen = net.params()[pi].len();
        // Probe a handful of coordinates per tensor to keep runtime sane.
        let probes: Vec<usize> = (0..plen).step_by((plen / 7).max(1)).collect();
        for &ci in &probes {
            let orig = net.params()[pi].data()[ci];
            let numeric = stable_numeric(
                |v| {
                    net.params_mut()[pi].data_mut()[ci] = v;
                    loss_of(net, x, labels)
                },
                orig,
            );
            net.params_mut()[pi].data_mut()[ci] = orig;
            let Some(numeric) = numeric else { continue };
            checked += 1;
            let analytic = grads[pi].data()[ci];
            let scale = numeric.abs().max(analytic.abs()).max(1.0);
            assert!(
                (numeric - analytic).abs() / scale < TOL,
                "param {pi}[{ci}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }
    assert!(checked > 10, "too few stable probes ({checked})");
}

/// Asserts the analytic input gradient matches central differences.
fn check_input_grad(net: &Network, x: &Tensor, labels: &[usize]) {
    let (logits, caches) = net.forward_train(x).unwrap();
    let lo = softmax_cross_entropy(&logits, labels, 1.0).unwrap();
    let (gin, _) = net.backward(&lo.grad, &caches).unwrap();
    let mut xp = x.clone();
    let probes: Vec<usize> = (0..x.len()).step_by((x.len() / 11).max(1)).collect();
    let mut checked = 0usize;
    for &ci in &probes {
        let orig = xp.data()[ci];
        let numeric = stable_numeric(
            |v| {
                xp.data_mut()[ci] = v;
                loss_of(net, &xp, labels)
            },
            orig,
        );
        xp.data_mut()[ci] = orig;
        let Some(numeric) = numeric else { continue };
        checked += 1;
        let analytic = gin.data()[ci];
        let scale = numeric.abs().max(analytic.abs()).max(1.0);
        assert!(
            (numeric - analytic).abs() / scale < TOL,
            "input[{ci}]: numeric {numeric} vs analytic {analytic}"
        );
    }
    assert!(checked > 5, "too few stable probes ({checked})");
}

#[test]
fn dense_relu_network_gradients() {
    let mut rng = StdRng::seed_from_u64(100);
    let mut net = Network::new(vec![6]);
    net.push(Layer::Dense(Dense::new(6, 10, &mut rng).unwrap()));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Dense(Dense::new(10, 4, &mut rng).unwrap()));
    let x = Tensor::randn(&[3, 6], 0.0, 1.0, &mut rng);
    let labels = [0usize, 2, 3];
    check_param_grads(&mut net, &x, &labels);
    check_input_grad(&net, &x, &labels);
}

#[test]
fn conv_network_gradients() {
    let mut rng = StdRng::seed_from_u64(101);
    let mut net = Network::new(vec![2, 7, 7]);
    let g = Conv2dGeometry::new(2, 7, 7, 3, 1, 1).unwrap();
    net.push(Layer::Conv2d(Conv2d::new(g, 3, &mut rng).unwrap()));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Flatten(Flatten::new()));
    net.push(Layer::Dense(Dense::new(3 * 7 * 7, 5, &mut rng).unwrap()));
    let x = Tensor::randn(&[2, 2, 7, 7], 0.0, 1.0, &mut rng);
    let labels = [1usize, 4];
    check_param_grads(&mut net, &x, &labels);
    check_input_grad(&net, &x, &labels);
}

#[test]
fn conv_pool_network_gradients() {
    let mut rng = StdRng::seed_from_u64(102);
    let mut net = Network::new(vec![1, 8, 8]);
    let g = Conv2dGeometry::new(1, 8, 8, 3, 1, 0).unwrap();
    net.push(Layer::Conv2d(Conv2d::new(g, 4, &mut rng).unwrap()));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::MaxPool2d(MaxPool2d::new(2).unwrap()));
    net.push(Layer::Flatten(Flatten::new()));
    net.push(Layer::Dense(Dense::new(4 * 3 * 3, 3, &mut rng).unwrap()));
    let x = Tensor::randn(&[2, 1, 8, 8], 0.0, 1.0, &mut rng);
    let labels = [0usize, 2];
    check_param_grads(&mut net, &x, &labels);
    check_input_grad(&net, &x, &labels);
}

#[test]
fn strided_padded_conv_gradients() {
    let mut rng = StdRng::seed_from_u64(103);
    let mut net = Network::new(vec![1, 9, 9]);
    let g = Conv2dGeometry::new(1, 9, 9, 3, 2, 1).unwrap();
    net.push(Layer::Conv2d(Conv2d::new(g, 2, &mut rng).unwrap()));
    net.push(Layer::Flatten(Flatten::new()));
    net.push(Layer::Dense(Dense::new(2 * 5 * 5, 3, &mut rng).unwrap()));
    let x = Tensor::randn(&[1, 1, 9, 9], 0.0, 1.0, &mut rng);
    let labels = [2usize];
    check_param_grads(&mut net, &x, &labels);
    check_input_grad(&net, &x, &labels);
}

#[test]
fn input_gradient_helper_agrees_with_manual_backward() {
    let mut rng = StdRng::seed_from_u64(104);
    let mut net = Network::new(vec![4]);
    net.push(Layer::Dense(Dense::new(4, 6, &mut rng).unwrap()));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Dense(Dense::new(6, 3, &mut rng).unwrap()));
    let x = Tensor::randn(&[2, 4], 0.0, 1.0, &mut rng);
    let (logits, caches) = net.forward_train(&x).unwrap();
    let lo = softmax_cross_entropy(&logits, &[0, 1], 1.0).unwrap();
    let (manual, _) = net.backward(&lo.grad, &caches).unwrap();
    let helper = net.input_gradient(&x, &lo.grad).unwrap();
    assert_eq!(manual, helper);
}

#[test]
fn dense_gradients_with_parallel_forward_and_odd_batch() {
    // Batch of 7 over a 4-thread budget: the forward pass used by the
    // finite-difference probes runs batch-chunked (spans of 2/2/2/1), which
    // must be bitwise-identical to the serial forward or the numeric and
    // analytic gradients drift apart. Examples are 4096-wide so the chunked
    // path actually engages (Network::forward keeps small batches serial).
    dcn_tensor::par::configure(dcn_tensor::ParConfig::with_threads(4));
    let mut rng = StdRng::seed_from_u64(105);
    let mut net = Network::new(vec![4096]);
    net.push(Layer::Dense(Dense::new(4096, 6, &mut rng).unwrap()));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Dense(Dense::new(6, 3, &mut rng).unwrap()));
    let x = Tensor::randn(&[7, 4096], 0.0, 0.5, &mut rng);
    let labels = [0usize, 1, 2, 0, 1, 2, 0];
    check_param_grads(&mut net, &x, &labels);
    check_input_grad(&net, &x, &labels);
    dcn_tensor::par::reset();
}

#[test]
fn conv_gradients_with_parallel_forward_and_odd_batch() {
    dcn_tensor::par::configure(dcn_tensor::ParConfig::with_threads(4));
    let mut rng = StdRng::seed_from_u64(106);
    let mut net = Network::new(vec![1, 7, 7]);
    let g = Conv2dGeometry::new(1, 7, 7, 3, 1, 0).unwrap();
    net.push(Layer::Conv2d(Conv2d::new(g, 2, &mut rng).unwrap()));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Flatten(Flatten::new()));
    net.push(Layer::Dense(Dense::new(2 * 5 * 5, 3, &mut rng).unwrap()));
    // im2col/col2im parallelize per image; 7 images over 4 threads is the
    // uneven-partition case.
    let x = Tensor::randn(&[7, 1, 7, 7], 0.0, 1.0, &mut rng);
    let labels = [0usize, 1, 2, 0, 1, 2, 0];
    check_param_grads(&mut net, &x, &labels);
    check_input_grad(&net, &x, &labels);
    dcn_tensor::par::reset();
}
