//! Property-based tests for the NN substrate: softmax/loss identities,
//! optimizer behavior, and model-persistence invariants.

use dcn_nn::{
    cross_entropy_soft, cw_loss, softmax, softmax_cross_entropy, Adam, Dense, Layer, Momentum,
    Network, Optimizer, Relu, Sgd,
};
use dcn_tensor::Tensor;
use proptest::prelude::*;

fn logit_rows(n: usize, k: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-8.0f32..8.0, n * k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn softmax_is_invariant_to_per_row_shifts(v in logit_rows(2, 5), shift in -10.0f32..10.0) {
        let z = Tensor::from_vec(vec![2, 5], v.clone()).unwrap();
        let zs = z.shift(shift);
        let p = softmax(&z, 1.0).unwrap();
        let ps = softmax(&zs, 1.0).unwrap();
        for (a, b) in p.data().iter().zip(ps.data().iter()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(v in logit_rows(3, 4), t in 0.5f32..50.0) {
        let z = Tensor::from_vec(vec![3, 4], v).unwrap();
        let p = softmax(&z, t).unwrap();
        prop_assert!(p.data().iter().all(|&x| (0.0..=1.0).contains(&x)));
        for row in p.data().chunks_exact(4) {
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn higher_temperature_never_sharpens(v in logit_rows(1, 6)) {
        let z = Tensor::from_vec(vec![1, 6], v).unwrap();
        let sharp = softmax(&z, 1.0).unwrap();
        let soft = softmax(&z, 10.0).unwrap();
        prop_assert!(soft.max().unwrap() <= sharp.max().unwrap() + 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero(v in logit_rows(2, 4), l0 in 0usize..4, l1 in 0usize..4) {
        // softmax(z) − onehot sums to zero per row (both sum to one).
        let z = Tensor::from_vec(vec![2, 4], v).unwrap();
        let out = softmax_cross_entropy(&z, &[l0, l1], 1.0).unwrap();
        for row in out.grad.data().chunks_exact(4) {
            let s: f32 = row.iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
        prop_assert!(out.loss >= -1e-6);
    }

    #[test]
    fn soft_and_hard_cross_entropy_agree_on_onehot(v in logit_rows(1, 5), label in 0usize..5) {
        let z = Tensor::from_vec(vec![1, 5], v).unwrap();
        let hard = softmax_cross_entropy(&z, &[label], 1.0).unwrap();
        let mut onehot = Tensor::zeros(&[1, 5]);
        onehot.data_mut()[label] = 1.0;
        let soft = cross_entropy_soft(&z, &onehot, 1.0).unwrap();
        prop_assert!((hard.loss - soft.loss).abs() < 1e-5);
        for (a, b) in hard.grad.data().iter().zip(soft.grad.data().iter()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn cw_loss_sign_matches_classification(v in prop::collection::vec(-5.0f32..5.0, 4), t in 0usize..4) {
        let z = Tensor::from_slice(&v);
        let (f, _) = cw_loss(&z, t, 0.0).unwrap();
        let argmax = z.argmax().unwrap();
        if argmax == t {
            // Classified as target → margin ≤ 0 (clamped to -0).
            prop_assert!(f <= 0.0);
        } else {
            prop_assert!(f >= 0.0);
        }
    }

    #[test]
    fn every_optimizer_descends_a_separable_quadratic(
        start in prop::collection::vec(-2.0f32..2.0, 3),
        which in 0usize..3,
    ) {
        let mut p = Tensor::from_slice(&start);
        let mut opt: Box<dyn Optimizer> = match which {
            0 => Box::new(Sgd::new(0.1)),
            1 => Box::new(Momentum::new(0.05, 0.9)),
            _ => Box::new(Adam::new(0.1)),
        };
        let loss = |p: &Tensor| p.data().iter().map(|x| x * x).sum::<f32>();
        let initial = loss(&p);
        for _ in 0..150 {
            let g = p.scale(2.0);
            let mut refs = [&mut p];
            opt.step(&mut refs, &[g]).unwrap();
        }
        prop_assert!(loss(&p) <= initial + 1e-4, "optimizer {which} diverged");
        prop_assert!(loss(&p) < 0.1 * initial.max(0.05), "optimizer {which} too slow: {} → {}", initial, loss(&p));
    }

    #[test]
    fn network_forward_is_deterministic_and_serde_stable(
        seedish in 0u64..1000,
        xs in prop::collection::vec(-0.5f32..0.5, 6),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seedish);
        let mut net = Network::new(vec![3]);
        net.push(Layer::Dense(Dense::new(3, 5, &mut rng).unwrap()));
        net.push(Layer::Relu(Relu::new()));
        net.push(Layer::Dense(Dense::new(5, 2, &mut rng).unwrap()));
        let x = Tensor::from_vec(vec![2, 3], xs).unwrap();
        let y1 = net.forward(&x).unwrap();
        let y2 = net.forward(&x).unwrap();
        prop_assert_eq!(&y1, &y2);
        let back = Network::from_json(&net.to_json().unwrap()).unwrap();
        prop_assert_eq!(y1, back.forward(&x).unwrap());
    }

    #[test]
    fn input_gradient_vanishes_for_constant_logit_direction(
        seedish in 0u64..1000,
        xs in prop::collection::vec(-0.5f32..0.5, 4),
    ) {
        // Backprop of an all-zero logit gradient must be exactly zero.
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seedish);
        let mut net = Network::new(vec![4]);
        net.push(Layer::Dense(Dense::new(4, 6, &mut rng).unwrap()));
        net.push(Layer::Relu(Relu::new()));
        net.push(Layer::Dense(Dense::new(6, 3, &mut rng).unwrap()));
        let x = Tensor::from_vec(vec![1, 4], xs).unwrap();
        let g = net.input_gradient(&x, &Tensor::zeros(&[1, 3])).unwrap();
        prop_assert!(g.data().iter().all(|&v| v == 0.0));
    }
}
