//! Property-based tests for crash-safe persistence: truncated, bit-flipped
//! and garbage inputs to `Network::load` and `TrainCheckpoint::load` must
//! come back as typed errors — never a panic, and never a network holding
//! non-finite weights.

use std::fs;
use std::path::PathBuf;

use dcn_nn::{Adam, Dense, Layer, Network, Optimizer, TrainCheckpoint};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_net() -> Network {
    let mut rng = StdRng::seed_from_u64(77);
    let mut net = Network::new(vec![4]);
    net.push(Layer::Dense(Dense::new(4, 3, &mut rng).unwrap()));
    net
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dcn_nn_persistence_fuzz");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn tiny_checkpoint() -> TrainCheckpoint {
    TrainCheckpoint {
        epoch: 1,
        epoch_losses: vec![0.5],
        net: tiny_net(),
        optimizer: Adam::new(0.01).export_state().unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn truncated_model_files_error_cleanly(cut_frac in 0.0f64..1.0) {
        let path = scratch("truncated_model.json");
        tiny_net().save(&path).unwrap();
        let full = fs::read_to_string(&path).unwrap();
        let cut = ((full.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < full.len());
        fs::write(&path, &full[..cut]).unwrap();
        prop_assert!(Network::load(&path).is_err());
    }

    #[test]
    fn bit_flipped_model_files_never_yield_nonfinite_weights(
        byte_idx in 0usize..4096,
        mask in 1u8..=255,
    ) {
        let path = scratch("flipped_model.json");
        tiny_net().save(&path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let i = byte_idx % bytes.len();
        bytes[i] ^= mask;
        fs::write(&path, &bytes).unwrap();
        // An unsealed (plain JSON) model has no CRC, so a lucky flip can
        // still parse — but it must never produce NaN/inf weights, and it
        // must never panic.
        if let Ok(net) = Network::load(&path) {
            for p in net.params() {
                prop_assert!(p.data().iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn bit_flipped_checkpoints_always_error(byte_idx in 0usize..8192, mask in 1u8..=255) {
        let path = scratch("flipped_ckpt.json");
        tiny_checkpoint().save(&path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let i = byte_idx % bytes.len();
        bytes[i] ^= mask;
        fs::write(&path, &bytes).unwrap();
        // Checkpoints are CRC-sealed: any single-byte change must be caught,
        // whether it lands in the payload or the footer.
        prop_assert!(TrainCheckpoint::load(&path).is_err());
    }

    #[test]
    fn garbage_files_error_cleanly(bytes in prop::collection::vec(32u8..127, 0..128)) {
        // Printable ASCII noise: occasionally JSON-ish fragments, never a
        // valid serialized Network or TrainCheckpoint.
        let garbage = String::from_utf8(bytes).unwrap();
        let path = scratch("garbage.json");
        fs::write(&path, &garbage).unwrap();
        prop_assert!(Network::load(&path).is_err());
        prop_assert!(TrainCheckpoint::load(&path).is_err());
    }

    #[test]
    fn truncated_checkpoints_error_cleanly(cut_frac in 0.0f64..1.0) {
        let path = scratch("truncated_ckpt.json");
        tiny_checkpoint().save(&path).unwrap();
        let full = fs::read_to_string(&path).unwrap();
        let cut = ((full.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < full.len());
        fs::write(&path, &full[..cut]).unwrap();
        prop_assert!(TrainCheckpoint::load(&path).is_err());
    }
}

#[test]
fn oversized_float_literals_never_load_as_infinity() {
    let path = scratch("huge_literal.json");
    tiny_net().save(&path).unwrap();
    let json = fs::read_to_string(&path).unwrap();
    // Blow up the first numeric literal far past f32 range. Whether the
    // parser rejects it or rounds to infinity, the load must fail — a
    // network with a non-finite weight may never reach the serving path.
    let with_huge = json.replacen("0.", "1e9999999.", 1);
    assert_ne!(json, with_huge, "expected a float literal to patch");
    fs::write(&path, with_huge).unwrap();
    assert!(Network::load(&path).is_err());
}

#[test]
fn missing_file_is_a_typed_io_error() {
    let err = Network::load(scratch("does_not_exist.json")).unwrap_err();
    assert!(matches!(err, dcn_nn::NnError::Io { .. }), "got {err:?}");
}
