//! Integration tests for `dcn-obs`: exact concurrent sums, bucket
//! boundaries, JSON round-trips through the vendored `serde_json`, and the
//! disabled-mode no-op guarantee.

use std::sync::Mutex;

use dcn_obs::{counter, histogram, names, snapshot, span, Snapshot};

/// Serializes tests that flip the global enabled flag.
static ENABLE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ENABLE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn concurrent_increments_sum_exactly() {
    // The DCN_THREADS=4 scenario: four workers hammering the same counter
    // and histogram must lose no increments.
    const WORKERS: usize = 4;
    const PER_WORKER: u64 = 10_000;
    let c = counter("obs_test.concurrent_total");
    let h = histogram("obs_test.concurrent_hist", &[0.25, 0.5, 0.75]);
    let before = c.get();
    let h_before = h.count();
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            scope.spawn(move || {
                for i in 0..PER_WORKER {
                    c.inc();
                    if i % 100 == 0 {
                        h.observe((w as f64) / (WORKERS as f64));
                    }
                }
            });
        }
    });
    assert_eq!(c.get() - before, WORKERS as u64 * PER_WORKER);
    assert_eq!(h.count() - h_before, WORKERS as u64 * (PER_WORKER / 100));
}

#[test]
fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
    let h = histogram("obs_test.bounds", &[1.0, 10.0, 100.0]);
    for v in [0.0, 1.0] {
        h.observe(v); // first bucket, boundary inclusive
    }
    h.observe(1.0000001); // second bucket
    h.observe(100.0); // third bucket
    h.observe(1e9); // overflow
    let counts = h.bucket_counts();
    assert_eq!(counts, vec![2, 1, 1, 1]);
    assert_eq!(h.bounds(), &[1.0, 10.0, 100.0]);
    assert_eq!(h.min(), Some(0.0));
    assert_eq!(h.max(), Some(1e9));
}

#[test]
fn snapshot_json_round_trips_through_vendored_serde_json() {
    let _guard = lock();
    counter(names::FORWARD_PASSES_TOTAL).add(7);
    counter(names::DCN_QUERIES_TOTAL).add(3);
    counter(names::DCN_PASSED_THROUGH_TOTAL).add(2);
    counter(names::DCN_CORRECTED_TOTAL).add(1);
    counter(names::DCN_BASE_PASSES_TOTAL).add(2 + 51);
    histogram(names::CORRECTOR_VOTE_MARGIN, dcn_obs::FRACTION).observe(0.35);
    let snap: Snapshot = snapshot("round-trip");
    let json = snap.to_json();

    let value: serde_json::Value = serde_json::from_str(&json).expect("snapshot JSON parses");
    assert_eq!(
        value.get_field("run").and_then(|v| v.as_str()),
        Some("round-trip")
    );
    let counters = value.get_field("counters").expect("counters key");
    let fwd = counters
        .get_field(names::FORWARD_PASSES_TOTAL)
        .and_then(|v| v.as_f64())
        .expect("forward passes counter");
    assert_eq!(fwd as u64, snap.counter(names::FORWARD_PASSES_TOTAL));
    let hists = value.get_field("histograms").expect("histograms key");
    let margin = hists
        .get_field(names::CORRECTOR_VOTE_MARGIN)
        .expect("vote margin histogram");
    let bounds = margin.get_field("bounds").and_then(|v| v.as_array()).unwrap();
    assert_eq!(bounds.len(), dcn_obs::FRACTION.len());
    let buckets = margin.get_field("buckets").and_then(|v| v.as_array()).unwrap();
    assert_eq!(bounds.len() + 1, buckets.len());
    let cost = value.get_field("cost").expect("cost key");
    let queries = cost.get_field("queries").and_then(|v| v.as_f64()).unwrap();
    assert_eq!(queries as u64, snap.cost.queries);
    let amortized = cost
        .get_field("amortized_passes_per_query")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!((amortized - snap.cost.amortized_passes_per_query()).abs() < 1e-9);
}

#[test]
fn disabled_mode_is_a_true_noop() {
    let _guard = lock();
    dcn_obs::set_enabled(false);
    assert!(!dcn_obs::enabled());
    // Spans are inert and export declines.
    let s = span("obs_test.disabled");
    assert!(!s.is_recording());
    drop(s);
    assert!(dcn_obs::maybe_export("obs_test_disabled").is_none());
    // The guarded-call idiom every instrumented site uses never touches the
    // registry when disabled, so a disabled run records nothing.
    let c = counter("obs_test.guarded");
    let before = c.get();
    if dcn_obs::enabled() {
        c.inc();
    }
    assert_eq!(c.get(), before);
}

#[test]
fn export_writes_parseable_file() {
    let _guard = lock();
    dcn_obs::set_enabled(true);
    counter("obs_test.exported").inc();
    let dir = std::env::temp_dir().join("dcn_obs_export_test");
    let path = snapshot("export-test").write_to(&dir).expect("write snapshot");
    dcn_obs::set_enabled(false);
    assert_eq!(path.file_name().unwrap().to_str(), Some("OBS_export-test.json"));
    let text = std::fs::read_to_string(&path).unwrap();
    let value: serde_json::Value = serde_json::from_str(&text).expect("exported JSON parses");
    assert!(value.get_field("counters").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reset_zeroes_but_keeps_registration() {
    let _guard = lock();
    let c = counter("obs_test.reset_me");
    c.add(5);
    // Reset zeroes every metric in the process; other tests in this binary
    // only assert deltas or hold the lock, so this is safe here.
    dcn_obs::reset();
    assert_eq!(c.get(), 0);
    assert_eq!(snapshot("post-reset").counter("obs_test.reset_me"), 0);
}
