//! Global metric registry: named atomic counters and fixed-bucket
//! histograms.
//!
//! Handles are `&'static`: each metric is allocated once on first use and
//! leaked, so hot paths pay one `BTreeMap` lookup to *obtain* a handle and
//! a single `fetch_add` per *increment*. Call sites that increment in a
//! tight loop should hoist the handle out of the loop.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// A monotonically increasing atomic counter.
#[derive(Debug)]
pub struct Counter {
    name: String,
    value: AtomicU64,
}

impl Counter {
    /// The counter's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn zero(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Atomic add on an `f64` stored as bits in an [`AtomicU64`].
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(cur) + v;
        match cell.compare_exchange_weak(
            cur,
            next.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Atomic min/max on an `f64` stored as bits in an [`AtomicU64`].
fn atomic_f64_extreme(cell: &AtomicU64, v: f64, take_max: bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let cur_v = f64::from_bits(cur);
        let better = if take_max { v > cur_v } else { v < cur_v };
        if !better && !cur_v.is_nan() {
            return;
        }
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// A fixed-bucket histogram: ascending upper bounds plus an implicit `+∞`
/// overflow bucket, with running count / sum / min / max.
#[derive(Debug)]
pub struct Histogram {
    name: String,
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    fn new(name: String, bounds: &[f64]) -> Self {
        let mut sorted: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            name,
            bounds: sorted,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::NAN.to_bits()),
            max_bits: AtomicU64::new(f64::NAN.to_bits()),
        }
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ascending bucket upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Records one observation: `v` lands in the first bucket whose upper
    /// bound is `>= v`, or the overflow bucket.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
        atomic_f64_extreme(&self.min_bits, v, false);
        atomic_f64_extreme(&self.max_bits, v, true);
    }

    /// Per-bucket counts, aligned with [`Histogram::bounds`] plus one final
    /// overflow entry.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Smallest observed value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        let v = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        (!v.is_nan()).then_some(v)
    }

    /// Largest observed value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        let v = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        (!v.is_nan()).then_some(v)
    }

    fn zero(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits.store(f64::NAN.to_bits(), Ordering::Relaxed);
        self.max_bits.store(f64::NAN.to_bits(), Ordering::Relaxed);
    }
}

#[derive(Default)]
pub(crate) struct Registry {
    pub(crate) counters: BTreeMap<String, &'static Counter>,
    pub(crate) histograms: BTreeMap<String, &'static Histogram>,
    pub(crate) sketches: BTreeMap<String, &'static crate::sketch::Sketch>,
}

pub(crate) fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    // A poisoned registry is still structurally sound (metrics are atomics
    // mutated outside the lock), so recover instead of propagating a panic
    // into the serving path.
    REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Returns (registering on first use) the counter named `name`.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry();
    if let Some(c) = reg.counters.get(name) {
        return c;
    }
    let leaked: &'static Counter = Box::leak(Box::new(Counter {
        name: name.to_string(),
        value: AtomicU64::new(0),
    }));
    reg.counters.insert(name.to_string(), leaked);
    leaked
}

/// Returns (registering on first use) the histogram named `name` with the
/// given bucket upper bounds. `bounds` is only consulted on first
/// registration; later callers share the original buckets.
pub fn histogram(name: &str, bounds: &[f64]) -> &'static Histogram {
    let mut reg = registry();
    if let Some(h) = reg.histograms.get(name) {
        return h;
    }
    let leaked: &'static Histogram = Box::leak(Box::new(Histogram::new(name.to_string(), bounds)));
    reg.histograms.insert(name.to_string(), leaked);
    leaked
}

/// Returns (registering on first use) the quantile sketch named `name`,
/// with the default centroid budget
/// ([`crate::DEFAULT_SKETCH_CAPACITY`]).
pub fn sketch(name: &str) -> &'static crate::sketch::Sketch {
    let mut reg = registry();
    if let Some(s) = reg.sketches.get(name) {
        return s;
    }
    let leaked: &'static crate::sketch::Sketch = Box::leak(Box::new(crate::sketch::Sketch::new(
        name.to_string(),
        crate::sketch::DEFAULT_SKETCH_CAPACITY,
    )));
    reg.sketches.insert(name.to_string(), leaked);
    leaked
}

/// Zeroes every registered counter, histogram and sketch (names stay
/// registered). Benches and the experiment harness call this between
/// runs so each snapshot covers exactly one workload.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.values() {
        c.zero();
    }
    for h in reg.histograms.values() {
        h.zero();
    }
    for s in reg.sketches.values() {
        s.zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_are_shared() {
        let a = counter("registry_test.shared");
        let b = counter("registry_test.shared");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), b.get());
        assert!(a.get() >= 3);
        assert_eq!(a.name(), "registry_test.shared");
    }

    #[test]
    fn histogram_buckets_observe_boundaries_inclusively() {
        let h = histogram("registry_test.hist", &[1.0, 2.0, 4.0]);
        h.observe(0.5); // bucket 0 (≤ 1)
        h.observe(1.0); // bucket 0 (boundary is inclusive)
        h.observe(1.5); // bucket 1
        h.observe(4.0); // bucket 2
        h.observe(9.0); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 16.0).abs() < 1e-12);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(9.0));
        assert!((h.mean() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn histogram_bounds_are_sorted_and_deduped() {
        let h = histogram("registry_test.unsorted", &[4.0, 1.0, 4.0, 2.0, f64::INFINITY]);
        assert_eq!(h.bounds(), &[1.0, 2.0, 4.0]);
        assert_eq!(h.bucket_counts().len(), 4);
    }

    #[test]
    fn atomic_f64_helpers_accumulate() {
        let cell = AtomicU64::new(0f64.to_bits());
        atomic_f64_add(&cell, 1.5);
        atomic_f64_add(&cell, 2.25);
        assert!((f64::from_bits(cell.load(Ordering::Relaxed)) - 3.75).abs() < 1e-12);
    }
}
