//! Point-in-time snapshots: JSON export and the human summary table.
//!
//! A [`Snapshot`] copies every registered counter and histogram, derives the
//! paper's cost model from the DCN counters (§4: benign traffic pays one
//! forward pass, flagged traffic `1 + m`), and serializes to JSON by hand —
//! the crate stays dependency-free; the output is plain JSON that the
//! vendored `serde_json` (and any real JSON parser) reads back.

use std::path::{Path, PathBuf};

use crate::registry::registry;
use crate::{enabled, names};

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Ascending bucket upper bounds (overflow bucket implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, one longer than `bounds`.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation (`None` when empty).
    pub min: Option<f64>,
    /// Largest observation (`None` when empty).
    pub max: Option<f64>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sum of the per-bucket counts (equal to `count` for a quiescent
    /// histogram).
    pub fn bucket_sum(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// Frozen state of one quantile sketch: the moments plus the standard
/// latency percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchSnapshot {
    /// Registered name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation (`None` when empty).
    pub min: Option<f64>,
    /// Largest observation (`None` when empty).
    pub max: Option<f64>,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl SketchSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The paper's §4 cost accounting, derived from the DCN counters: benign
/// traffic pays 1 forward pass, flagged traffic pays `1 + votes`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// DCN classifications answered.
    pub queries: u64,
    /// Queries the detector passed straight through.
    pub passed_through: u64,
    /// Queries routed through the corrector.
    pub corrected: u64,
    /// Actual base-classifier forward passes consumed.
    pub base_passes: u64,
    /// Actual vote samples classified across all corrections.
    pub corrector_votes: u64,
}

impl CostModel {
    /// Amortized base-network forward passes per query — the quantity the
    /// paper's Table 6 / Fig. 5 cost claims reduce to.
    pub fn amortized_passes_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.base_passes as f64 / self.queries as f64
        }
    }

    /// Mean votes per correction — the *effective* `m` (0 when nothing was
    /// corrected).
    pub fn mean_votes_per_correction(&self) -> f64 {
        if self.corrected == 0 {
            0.0
        } else {
            self.corrector_votes as f64 / self.corrected as f64
        }
    }
}

/// A frozen copy of every registered metric plus derived cost accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Run label the snapshot was taken under.
    pub run: String,
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram states, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Quantile-sketch states, sorted by name.
    pub sketches: Vec<SketchSnapshot>,
    /// Derived DCN cost model.
    pub cost: CostModel,
}

/// Takes a snapshot of the current metric state under the label `run`.
pub fn snapshot(run: &str) -> Snapshot {
    let reg = registry();
    let counters: Vec<(String, u64)> = reg
        .counters
        .iter()
        .map(|(name, c)| (name.clone(), c.get()))
        .collect();
    let histograms: Vec<HistogramSnapshot> = reg
        .histograms
        .iter()
        .map(|(name, h)| {
            let count_before = h.count();
            let buckets = h.bucket_counts();
            let count = h.count();
            let snap = HistogramSnapshot {
                name: name.clone(),
                bounds: h.bounds().to_vec(),
                buckets,
                count,
                sum: h.sum(),
                min: h.min(),
                max: h.max(),
            };
            // Consistency: every observation lands in exactly one bucket,
            // so for a histogram that was quiescent across both count
            // reads the bucket sum matches the count exactly. Concurrent
            // observers (or a racing reset) change the count between the
            // reads, which skips the check.
            debug_assert!(
                count_before != count || snap.bucket_sum() == count,
                "histogram {name}: bucket sum {} diverges from count {count}",
                snap.bucket_sum(),
            );
            snap
        })
        .collect();
    let sketches: Vec<SketchSnapshot> = reg
        .sketches
        .iter()
        .map(|(name, s)| {
            let state = s.state();
            SketchSnapshot {
                name: name.clone(),
                count: state.count(),
                sum: state.sum(),
                min: state.min(),
                max: state.max(),
                p50: state.quantile(0.5),
                p90: state.quantile(0.9),
                p99: state.quantile(0.99),
                p999: state.quantile(0.999),
            }
        })
        .collect();
    drop(reg);
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };
    let cost = CostModel {
        queries: get(names::DCN_QUERIES_TOTAL),
        passed_through: get(names::DCN_PASSED_THROUGH_TOTAL),
        corrected: get(names::DCN_CORRECTED_TOTAL),
        base_passes: get(names::DCN_BASE_PASSES_TOTAL),
        corrector_votes: get(names::CORRECTOR_VOTES_TOTAL),
    };
    Snapshot {
        run: run.to_string(),
        counters,
        histograms,
        sketches,
        cost,
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub(crate) fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Snapshot {
    /// Value of a counter in this snapshot (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Histogram state by name, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Quantile-sketch state by name, if recorded.
    pub fn sketch(&self, name: &str) -> Option<&SketchSnapshot> {
        self.sketches.iter().find(|s| s.name == name)
    }

    /// Serializes the snapshot as pretty-printed JSON with top-level keys
    /// `run`, `counters`, `histograms`, `sketches` and `cost`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"run\": {},\n", json_escape(&self.run)));
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    {}: {v}", json_escape(name)));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let bounds: Vec<String> = h.bounds.iter().map(|&b| json_f64(b)).collect();
            let buckets: Vec<String> = h.buckets.iter().map(|&b| b.to_string()).collect();
            out.push_str(&format!(
                "    {}: {{\"bounds\": [{}], \"buckets\": [{}], \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                json_escape(&h.name),
                bounds.join(", "),
                buckets.join(", "),
                h.count,
                json_f64(h.sum),
                h.min.map_or("null".to_string(), json_f64),
                h.max.map_or("null".to_string(), json_f64),
            ));
        }
        out.push_str(if self.histograms.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"sketches\": {");
        for (i, s) in self.sketches.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}}}",
                json_escape(&s.name),
                s.count,
                json_f64(s.sum),
                s.min.map_or("null".to_string(), json_f64),
                s.max.map_or("null".to_string(), json_f64),
                json_f64(s.p50),
                json_f64(s.p90),
                json_f64(s.p99),
                json_f64(s.p999),
            ));
        }
        out.push_str(if self.sketches.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str(&format!(
            "  \"cost\": {{\"queries\": {}, \"passed_through\": {}, \"corrected\": {}, \"base_passes\": {}, \"corrector_votes\": {}, \"amortized_passes_per_query\": {}, \"mean_votes_per_correction\": {}}}\n",
            self.cost.queries,
            self.cost.passed_through,
            self.cost.corrected,
            self.cost.base_passes,
            self.cost.corrector_votes,
            json_f64(self.cost.amortized_passes_per_query()),
            json_f64(self.cost.mean_votes_per_correction()),
        ));
        out.push_str("}\n");
        out
    }

    /// Renders the human-readable summary table printed by examples and the
    /// CLI's `obs` section.
    pub fn render(&self) -> String {
        let mut out = format!("== observability summary ({}) ==\n", self.run);
        if self.counters.is_empty() && self.histograms.is_empty() {
            out.push_str("(no metrics recorded — set DCN_OBS=1 or call dcn_obs::set_enabled)\n");
            return out;
        }
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(0);
        for (name, v) in &self.counters {
            out.push_str(&format!("  {name:width$}  {v}\n"));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "  {:width$}  n={} mean={:.4} min={:.4} max={:.4}\n",
                h.name,
                h.count,
                h.mean(),
                h.min.unwrap_or(0.0),
                h.max.unwrap_or(0.0),
            ));
        }
        for s in &self.sketches {
            out.push_str(&format!(
                "  {:width$}  n={} p50={:.4} p99={:.4} p999={:.4} max={:.4}\n",
                s.name,
                s.count,
                s.p50,
                s.p99,
                s.p999,
                s.max.unwrap_or(0.0),
            ));
        }
        if self.cost.queries > 0 {
            out.push_str(&format!(
                "  cost: {} queries → {:.2} passes/query ({} passed @1, {} corrected @1+{:.0})\n",
                self.cost.queries,
                self.cost.amortized_passes_per_query(),
                self.cost.passed_through,
                self.cost.corrected,
                self.cost.mean_votes_per_correction(),
            ));
        }
        out
    }

    /// Writes the snapshot as `OBS_<run>.json` under `dir`, creating the
    /// directory as needed. Returns the written path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let safe: String = self
            .run
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let path = dir.join(format!("OBS_{safe}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Default export directory: `DCN_OBS_JSON` when it holds a path, else the
/// workspace `results/` located from `CARGO_MANIFEST_DIR` (set by every
/// `cargo run/test/bench` invocation), else `./results`.
fn export_dir() -> PathBuf {
    if let Ok(v) = std::env::var("DCN_OBS_JSON") {
        if !v.is_empty() && v != "0" && v != "1" && !v.eq_ignore_ascii_case("true") && !v.eq_ignore_ascii_case("false") {
            return PathBuf::from(v);
        }
    }
    if let Some(manifest) = std::env::var_os("CARGO_MANIFEST_DIR") {
        // Member crates live at <workspace>/crates/<name> or
        // <workspace>/compat/<name>; results/ sits at the workspace root.
        let mut p = PathBuf::from(manifest);
        p.pop();
        p.pop();
        return p.join("results");
    }
    PathBuf::from("results")
}

/// The directory snapshots (and flight-recorder dumps) land in by
/// default: `DCN_OBS_JSON` when it holds a path, else the workspace
/// `results/` directory.
pub fn default_export_dir() -> PathBuf {
    export_dir()
}

/// Snapshots the current metrics and writes `OBS_<run>.json` when
/// collection is enabled; a no-op returning `None` otherwise. This is the
/// one-line exit hook tests, examples and the CLI use.
pub fn maybe_export(run: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    snapshot(run).write_to(&export_dir()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, histogram, names, set_enabled, FRACTION};

    #[test]
    fn snapshot_reads_counters_and_cost() {
        let _guard = crate::test_lock();
        counter(names::DCN_QUERIES_TOTAL).add(10);
        counter(names::DCN_PASSED_THROUGH_TOTAL).add(8);
        counter(names::DCN_CORRECTED_TOTAL).add(2);
        counter(names::DCN_BASE_PASSES_TOTAL).add(8 + 2 * 51);
        counter(names::CORRECTOR_VOTES_TOTAL).add(100);
        histogram(names::CORRECTOR_VOTE_MARGIN, FRACTION).observe(0.4);
        let snap = snapshot("unit");
        assert!(snap.counter(names::DCN_QUERIES_TOTAL) >= 10);
        assert!(snap.cost.queries >= 10);
        assert!(snap.cost.amortized_passes_per_query() > 1.0);
        assert!(snap.histogram(names::CORRECTOR_VOTE_MARGIN).unwrap().count >= 1);
        assert!(snap.render().contains("cost:"));
    }

    #[test]
    fn json_output_has_top_level_keys() {
        let _guard = crate::test_lock();
        counter("snapshot_test.k").inc();
        let json = snapshot("json-keys").to_json();
        for key in ["\"run\"", "\"counters\"", "\"histograms\"", "\"cost\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn histogram_bucket_counts_sum_to_recorded_count() {
        let _guard = crate::test_lock();
        let h = histogram("snapshot_test.bucket_sum", &[1.0, 10.0]);
        for v in [0.5, 0.5, 3.0, 50.0] {
            h.observe(v);
        }
        let snap = snapshot("bucket-sum");
        let hs = snap.histogram("snapshot_test.bucket_sum").unwrap();
        assert_eq!(hs.count, 4);
        assert_eq!(hs.bucket_sum(), hs.count);
    }

    #[test]
    fn sketches_surface_percentiles_in_snapshot_and_json() {
        let _guard = crate::test_lock();
        let s = crate::sketch("snapshot_test.sketch_latency");
        for i in 1..=100 {
            s.observe(i as f64);
        }
        let snap = snapshot("sketches");
        let ss = snap.sketch("snapshot_test.sketch_latency").unwrap();
        assert!(ss.count >= 100);
        assert!(ss.p50 > 0.0 && ss.p50 <= ss.p99 && ss.p99 <= ss.p999);
        assert_eq!(ss.max, Some(100.0));
        let json = snap.to_json();
        assert!(json.contains("\"sketches\""), "{json}");
        assert!(json.contains("\"snapshot_test.sketch_latency\""), "{json}");
        assert!(json.contains("\"p999\""), "{json}");
        assert!(snap.render().contains("p999="));
    }

    #[test]
    fn disabled_export_is_a_noop() {
        let _guard = crate::test_lock();
        set_enabled(false);
        assert!(maybe_export("never-written").is_none());
    }

    #[test]
    fn empty_cost_model_divides_safely() {
        let c = CostModel {
            queries: 0,
            passed_through: 0,
            corrected: 0,
            base_passes: 0,
            corrector_votes: 0,
        };
        assert_eq!(c.amortized_passes_per_query(), 0.0);
        assert_eq!(c.mean_votes_per_correction(), 0.0);
    }
}
