//! Runtime lock-order witness: `ordered::Mutex<T>` / `ordered::Condvar`.
//!
//! Every lock in the serving and parameter-server planes is constructed
//! with a dotted **site name** (`ordered::Mutex::new(value, "ps.state")`).
//! When the witness is enabled, each acquisition records an edge from
//! every site the current thread already holds to the site being
//! acquired, building the process-wide acquisition DAG. The first edge
//! that would close a cycle — or a re-acquisition of a site the thread
//! already holds — panics immediately with both site names, so every
//! existing concurrency test doubles as a deadlock detector. The observed
//! DAG is exported via [`witness_edges`] / [`witness_sites`] so tests can
//! assert it is consistent with the canonical order in
//! `ci/lint/lock_order.txt` (the same file the static `lock-order` rule
//! checks).
//!
//! The witness is **debug/test-only**: its bookkeeping is compiled only
//! under `cfg(any(test, debug_assertions))` and, even then, does nothing
//! until enabled via the `DCN_LOCK_WITNESS=1` environment variable or
//! [`set_witness_enabled`]. In release builds the wrapper is a transparent
//! shim over `std::sync::Mutex` — bitwise non-interfering. Poisoning is
//! absorbed with the workspace idiom (`unwrap_or_else(PoisonError::into_inner)`)
//! so panicking witness threads in tests cannot cascade.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{MutexGuard, PoisonError};

/// Witness gate: 0 = unresolved, 1 = forced off, 2 = forced on,
/// 3 = env said off, 4 = env said on.
static WITNESS: AtomicU8 = AtomicU8::new(0);

/// Whether witness bookkeeping is compiled into this build at all.
/// Release binaries (no `debug_assertions`) always report `false`.
pub fn witness_compiled() -> bool {
    cfg!(any(test, debug_assertions))
}

/// Whether the witness is recording: compiled in AND enabled by
/// `DCN_LOCK_WITNESS=1` or [`set_witness_enabled`].
pub fn witness_enabled() -> bool {
    if !witness_compiled() {
        return false;
    }
    match WITNESS.load(Ordering::Relaxed) {
        2 | 4 => true,
        1 | 3 => false,
        _ => {
            let on = std::env::var("DCN_LOCK_WITNESS").map(|v| v == "1").unwrap_or(false);
            WITNESS.store(if on { 4 } else { 3 }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces the witness on or off for this process, overriding the
/// environment. Tests use this to opt in without re-exec.
pub fn set_witness_enabled(on: bool) {
    WITNESS.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Clears a [`set_witness_enabled`] override so the environment variable
/// is consulted again on the next acquisition.
pub fn clear_witness_override() {
    WITNESS.store(0, Ordering::Relaxed);
}

/// The acquisition edges observed so far, as `(held_site, acquired_site)`
/// pairs in sorted order. Empty when the witness is compiled out or has
/// recorded nothing.
pub fn witness_edges() -> Vec<(String, String)> {
    #[cfg(any(test, debug_assertions))]
    {
        return witness::edges();
    }
    #[allow(unreachable_code)]
    Vec::new()
}

/// Every site the witness has seen acquired, sorted. Empty when compiled
/// out.
pub fn witness_sites() -> Vec<String> {
    #[cfg(any(test, debug_assertions))]
    {
        return witness::sites();
    }
    #[allow(unreachable_code)]
    Vec::new()
}

/// Clears the observed DAG (sites and edges). Tests call this to isolate
/// their assertions from earlier acquisitions in the same process.
pub fn reset_witness() {
    #[cfg(any(test, debug_assertions))]
    witness::reset();
}

#[cfg(any(test, debug_assertions))]
mod witness {
    //! Bookkeeping for the lock-order witness. Compiled only into
    //! debug/test builds; the `panic!`s below are the whole point — a
    //! would-be deadlock must fail loudly in CI, not hang.

    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::{Mutex, PoisonError};

    /// Process-wide acquisition graph: site → set of sites acquired while
    /// it was held (edge held → acquired).
    struct Graph {
        sites: BTreeSet<&'static str>,
        edges: BTreeMap<&'static str, BTreeSet<&'static str>>,
    }

    static GRAPH: Mutex<Graph> = Mutex::new(Graph {
        sites: BTreeSet::new(),
        edges: BTreeMap::new(),
    });

    thread_local! {
        /// Sites this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// Is `to` reachable from `from` through recorded edges?
    fn reaches(g: &Graph, from: &str, to: &str) -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(cur) = stack.pop() {
            if cur == to {
                return true;
            }
            if !seen.insert(cur.to_string()) {
                continue;
            }
            if let Some(next) = g.edges.get(cur) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    fn die(msg: String) -> ! {
        panic!("{msg}");
    }

    /// Records the acquisition of `site` by this thread: inserts an edge
    /// from every held site, panicking if an edge would close a cycle or
    /// the thread already holds `site`. Called BEFORE blocking on the
    /// underlying mutex so a real deadlock becomes a panic, not a hang.
    pub fn acquiring(site: &'static str) {
        let held: Vec<&'static str> =
            HELD.try_with(|h| h.borrow().clone()).unwrap_or_default();
        if held.contains(&site) {
            die(format!(
                "lock-order witness: thread re-acquired `{site}` while already holding it \
                 (held: {held:?})"
            ));
        }
        let mut g = GRAPH.lock().unwrap_or_else(PoisonError::into_inner);
        g.sites.insert(site);
        for from in held {
            if reaches(&g, site, from) {
                die(format!(
                    "lock-order witness: acquiring `{site}` while holding `{from}` closes a \
                     cycle — some thread previously acquired `{from}` (directly or transitively) \
                     while holding `{site}`; observed edges: {:?}",
                    edges_locked(&g)
                ));
            }
            g.edges.entry(from).or_default().insert(site);
        }
        drop(g);
        let _ = HELD.try_with(|h| h.borrow_mut().push(site));
    }

    /// Records the release of `site` (guards may drop out of acquisition
    /// order, so remove by value at the last occurrence).
    pub fn releasing(site: &'static str) {
        let _ = HELD.try_with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|s| *s == site) {
                held.remove(pos);
            }
        });
    }

    fn edges_locked(g: &Graph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .flat_map(|(from, tos)| {
                tos.iter().map(move |to| (from.to_string(), to.to_string()))
            })
            .collect()
    }

    pub fn edges() -> Vec<(String, String)> {
        let g = GRAPH.lock().unwrap_or_else(PoisonError::into_inner);
        edges_locked(&g)
    }

    pub fn sites() -> Vec<String> {
        let g = GRAPH.lock().unwrap_or_else(PoisonError::into_inner);
        g.sites.iter().map(|s| s.to_string()).collect()
    }

    pub fn reset() {
        let mut g = GRAPH.lock().unwrap_or_else(PoisonError::into_inner);
        g.sites.clear();
        g.edges.clear();
    }
}

/// A named mutex that reports acquisitions to the lock-order witness.
/// Drop-in for `std::sync::Mutex` at the workspace's call shapes; the
/// poison policy is baked in (poisoning is absorbed, never surfaced).
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    site: &'static str,
}

impl<T> Mutex<T> {
    /// Wraps `value` under the dotted witness site name `site`. Site names
    /// must be unique per lock object class; the static `lock-order` rule
    /// checks them against `ci/lint/lock_order.txt`.
    pub const fn new(value: T, site: &'static str) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
            site,
        }
    }

    /// Acquires the lock, recording the acquisition edge first (so a real
    /// deadlock panics in witness mode instead of hanging).
    pub fn lock(&self) -> Guard<'_, T> {
        let witnessed = witness_enabled();
        #[cfg(any(test, debug_assertions))]
        if witnessed {
            witness::acquiring(self.site);
        }
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        Guard {
            guard: std::mem::ManuallyDrop::new(guard),
            site: self.site,
            witnessed,
        }
    }

    /// The witness site name this lock was constructed with.
    pub fn site(&self) -> &'static str {
        self.site
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ordered::Mutex")
            .field("site", &self.site)
            .field("inner", &self.inner)
            .finish()
    }
}

/// A held [`Mutex`] guard; releases the witness record on drop.
pub struct Guard<'a, T> {
    guard: std::mem::ManuallyDrop<MutexGuard<'a, T>>,
    site: &'static str,
    witnessed: bool,
}

impl<T> Deref for Guard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for Guard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for Guard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: the inner guard is dropped exactly once, here; the field
        // is never touched again after this.
        unsafe { std::mem::ManuallyDrop::drop(&mut self.guard) };
        if self.witnessed {
            #[cfg(any(test, debug_assertions))]
            witness::releasing(self.site);
        }
        let _ = self.site;
    }
}

/// A condvar paired with [`Mutex`]: waiting releases the witness record
/// while the thread is parked and re-records the acquisition on wake, so
/// the DAG reflects what the thread actually holds.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// An empty condvar.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing `guard`'s lock while parked.
    pub fn wait<'a, T>(&self, guard: Guard<'a, T>) -> Guard<'a, T> {
        let (site, witnessed, inner) = guard.into_parts();
        if witnessed {
            #[cfg(any(test, debug_assertions))]
            witness::releasing(site);
        }
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        if witnessed {
            #[cfg(any(test, debug_assertions))]
            witness::acquiring(site);
        }
        Guard {
            guard: std::mem::ManuallyDrop::new(inner),
            site,
            witnessed,
        }
    }

    /// Blocks until notified or `dur` elapses; the bool reports timeout.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: Guard<'a, T>,
        dur: std::time::Duration,
    ) -> (Guard<'a, T>, bool) {
        let (site, witnessed, inner) = guard.into_parts();
        if witnessed {
            #[cfg(any(test, debug_assertions))]
            witness::releasing(site);
        }
        let (inner, timeout) = self
            .inner
            .wait_timeout(inner, dur)
            .unwrap_or_else(PoisonError::into_inner);
        if witnessed {
            #[cfg(any(test, debug_assertions))]
            witness::acquiring(site);
        }
        (
            Guard {
                guard: std::mem::ManuallyDrop::new(inner),
                site,
                witnessed,
            },
            timeout.timed_out(),
        )
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, T> Guard<'a, T> {
    /// Decomposes the guard without running its `Drop` (the witness record
    /// is NOT released — callers in [`Condvar`] manage it explicitly).
    fn into_parts(self) -> (&'static str, bool, MutexGuard<'a, T>) {
        let mut this = std::mem::ManuallyDrop::new(self);
        let site = this.site;
        let witnessed = this.witnessed;
        // SAFETY: `self` is wrapped in ManuallyDrop so its Drop never runs;
        // the inner guard is taken exactly once here.
        let inner = unsafe { std::mem::ManuallyDrop::take(&mut this.guard) };
        (site, witnessed, inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use std::time::Duration;

    /// The witness DAG is process-global, so tests that assert on it run
    /// under one lock to avoid cross-test interference.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<std::sync::Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| std::sync::Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn consistent_nesting_records_edges_without_panicking() {
        let _s = serial();
        set_witness_enabled(true);
        reset_witness();
        let a = Mutex::new(1u32, "t.order.a");
        let b = Mutex::new(2u32, "t.order.b");
        for _ in 0..3 {
            let ga = a.lock();
            let gb = b.lock();
            assert_eq!(*ga + *gb, 3);
        }
        assert!(witness_sites().contains(&"t.order.a".to_string()));
        assert!(witness_edges().contains(&("t.order.a".to_string(), "t.order.b".to_string())));
        set_witness_enabled(false);
    }

    #[test]
    fn reversed_order_panics_with_both_site_names() {
        let _s = serial();
        set_witness_enabled(true);
        reset_witness();
        let result = std::thread::spawn(|| {
            static A: Mutex<u32> = Mutex::new(0, "t.cycle.a");
            static B: Mutex<u32> = Mutex::new(0, "t.cycle.b");
            {
                let _ga = A.lock();
                let _gb = B.lock();
            }
            let _gb = B.lock();
            let _ga = A.lock(); // closes the cycle -> witness panics
        })
        .join();
        set_witness_enabled(false);
        let err = result.expect_err("reversed acquisition must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".to_string());
        assert!(msg.contains("t.cycle.a") && msg.contains("t.cycle.b"), "{msg}");
    }

    #[test]
    fn relocking_a_held_site_panics() {
        let _s = serial();
        set_witness_enabled(true);
        reset_witness();
        let result = std::thread::spawn(|| {
            static M: Mutex<u32> = Mutex::new(0, "t.relock.m");
            let _g1 = M.lock();
            let _g2 = M.lock(); // self-deadlock -> witness panics before blocking
        })
        .join();
        set_witness_enabled(false);
        assert!(result.is_err(), "re-acquisition must panic, not hang");
    }

    #[test]
    fn condvar_wait_timeout_round_trips_the_guard() {
        let _s = serial();
        set_witness_enabled(true);
        reset_witness();
        let m = Mutex::new(7u32, "t.cv.m");
        let cv = Condvar::new();
        let g = m.lock();
        let (g, timed_out) = cv.wait_timeout(g, Duration::from_millis(10));
        assert!(timed_out);
        assert_eq!(*g, 7);
        drop(g);
        // After the wake the site is re-held then released; a fresh lock
        // must succeed (no stale HELD entry).
        let g2 = m.lock();
        assert_eq!(*g2, 7);
        set_witness_enabled(false);
    }

    #[test]
    fn disabled_witness_records_nothing() {
        let _s = serial();
        set_witness_enabled(false);
        reset_witness();
        let a = Mutex::new(1u32, "t.off.a");
        let b = Mutex::new(2u32, "t.off.b");
        let _ga = a.lock();
        let _gb = b.lock();
        assert!(witness_sites().is_empty());
        assert!(witness_edges().is_empty());
    }

    #[test]
    fn compiled_flag_matches_build_profile() {
        // Tests always build with cfg(test), so the witness is compiled in.
        assert!(witness_compiled());
    }
}
