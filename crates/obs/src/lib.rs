//! # dcn-obs
//!
//! Std-only structured observability for the DCN pipeline: scoped span
//! timers, atomic counters, fixed-bucket histograms, and a JSON snapshot /
//! cost-accounting export.
//!
//! The paper's headline claims are quantitative — detector FN/FP rates, the
//! corrector's `m = 50` vote budget, and a cost model where benign traffic
//! pays one forward pass while flagged traffic pays `1 + m` (Figs. 2–3).
//! This crate makes those numbers observable at runtime without changing a
//! single bit of any pipeline output:
//!
//! * **Disabled by default, near-zero cost.** Every instrumentation site is
//!   guarded by [`enabled`] — a single relaxed atomic load. When disabled no
//!   clock is read, no name is formatted, no lock is taken.
//! * **Bitwise non-interference.** Metrics only *read* pipeline values; they
//!   never feed back into any computation, so outputs are identical bit for
//!   bit whether observability is on or off (extending the PR 1 determinism
//!   guarantee).
//! * **Thread-safe.** Counters and histogram buckets are atomics; the
//!   registry hands out `&'static` handles, so parallel workers under
//!   `DCN_THREADS=N` increment without locks on the hot path.
//!
//! Enable with `DCN_OBS=1` (collection) and/or `DCN_OBS_JSON=1` (collection
//! plus snapshot export; a non-boolean value is treated as the output
//! directory), or programmatically with [`set_enabled`].
//!
//! The crate also hosts the debug/test-only runtime lock-order witness
//! ([`ordered`]): named `Mutex`/`Condvar` wrappers that record the
//! acquisition DAG and panic on a would-be deadlock when
//! `DCN_LOCK_WITNESS=1` is set. Release builds compile the bookkeeping
//! out entirely — the wrapper is bitwise non-interfering when disabled.
//!
//! ```
//! dcn_obs::set_enabled(true);
//! if dcn_obs::enabled() {
//!     dcn_obs::counter("forward_passes_total").add(1);
//! }
//! let snap = dcn_obs::snapshot("demo");
//! assert!(snap.counter("forward_passes_total") >= 1);
//! dcn_obs::set_enabled(false);
//! ```

#![deny(missing_docs)]

pub mod ordered;
mod recorder;
mod registry;
mod sketch;
mod snapshot;
mod span;
mod trace;

pub use recorder::{
    flag_window, flight_events, flight_json, record_event, record_flag, recorder_enabled,
    reset_recorder, FlightEvent,
};
pub use registry::{counter, histogram, reset, sketch, Counter, Histogram};
pub use sketch::{QuantileSketch, Sketch, DEFAULT_SKETCH_CAPACITY};
pub use snapshot::{
    default_export_dir, maybe_export, snapshot, CostModel, HistogramSnapshot, SketchSnapshot,
    Snapshot,
};
pub use span::{span, Span};
pub use trace::{
    chrome_trace, clear_trace_override, completed_traces, mint_trace_id, reset_traces,
    set_trace_enabled, stage_clock, stage_end, stage_end_many, trace_enabled, trace_finish,
    trace_lookup, trace_start, StageClock, StageRecord, TraceRecord,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// Well-known metric names, shared by every instrumented crate so snapshots
/// stay greppable and DESIGN.md §8 can document one canonical list.
pub mod names {
    /// Examples pushed through any `Network::forward` (one per example).
    pub const FORWARD_PASSES_TOTAL: &str = "forward_passes_total";
    /// Batched forward calls (one per batch).
    pub const FORWARD_BATCHES_TOTAL: &str = "nn.forward_batches_total";
    /// Training epochs completed.
    pub const TRAIN_EPOCHS_TOTAL: &str = "train.epochs_total";
    /// Training mini-batches completed.
    pub const TRAIN_BATCHES_TOTAL: &str = "train.batches_total";
    /// Histogram of per-epoch mean loss.
    pub const TRAIN_EPOCH_LOSS: &str = "train.epoch_loss";
    /// Histogram of per-epoch wall-clock seconds.
    pub const TRAIN_EPOCH_SECONDS: &str = "train.epoch_seconds";
    /// Logit vectors scored by the detector.
    pub const DETECTOR_EVALUATED_TOTAL: &str = "detector_evaluated_total";
    /// Logit vectors the detector flagged as adversarial.
    pub const DETECTOR_FLAGGED_TOTAL: &str = "detector_flagged_total";
    /// Labelled-eval benign inputs seen (denominator of the live FN rate).
    pub const DETECTOR_BENIGN_TOTAL: &str = "detector.labelled_benign_total";
    /// Labelled-eval benign inputs flagged (paper's false negatives).
    pub const DETECTOR_BENIGN_FLAGGED_TOTAL: &str = "detector.labelled_benign_flagged_total";
    /// Labelled-eval adversarial inputs seen (denominator of the live FP rate).
    pub const DETECTOR_ADV_TOTAL: &str = "detector.labelled_adversarial_total";
    /// Labelled-eval adversarial inputs missed (paper's false positives).
    pub const DETECTOR_ADV_MISSED_TOTAL: &str = "detector.labelled_adversarial_missed_total";
    /// Corrector majority votes run.
    pub const CORRECTOR_INVOCATIONS_TOTAL: &str = "corrector_invocations_total";
    /// Individual vote samples classified (actual, not nominal `m`).
    pub const CORRECTOR_VOTES_TOTAL: &str = "corrector_votes_total";
    /// Histogram of the vote margin `(top − runner-up) / votes` in `[0, 1]`.
    pub const CORRECTOR_VOTE_MARGIN: &str = "corrector.vote_margin";
    /// DCN classifications answered.
    pub const DCN_QUERIES_TOTAL: &str = "dcn.queries_total";
    /// DCN classifications the detector passed straight through (cost 1).
    pub const DCN_PASSED_THROUGH_TOTAL: &str = "dcn.passed_through_total";
    /// DCN classifications routed through the corrector (cost 1 + votes).
    pub const DCN_CORRECTED_TOTAL: &str = "dcn.corrected_total";
    /// Actual base-classifier forward passes consumed by DCN queries.
    pub const DCN_BASE_PASSES_TOTAL: &str = "dcn.base_passes_total";
    /// Parallel regions opened (serial or threaded).
    pub const PAR_REGIONS_TOTAL: &str = "par.regions_total";
    /// Parallel regions that degenerated to the serial path.
    pub const PAR_SERIAL_REGIONS_TOTAL: &str = "par.serial_regions_total";
    /// Work units dispatched across all parallel regions.
    pub const PAR_UNITS_TOTAL: &str = "par.units_total";
    /// Histogram of workers per parallel region (thread utilization).
    pub const PAR_WORKERS: &str = "par.workers";
    /// Buffers handed out by the per-thread scratch pools.
    pub const SCRATCH_TAKES_TOTAL: &str = "scratch.takes_total";
    /// Buffers returned to the per-thread scratch pools for reuse.
    pub const SCRATCH_RECYCLES_TOTAL: &str = "scratch.recycles_total";
    /// DCN queries answered with a degraded result (partial vote or base
    /// fallback) because a vote budget or deadline expired.
    pub const DCN_DEGRADED_TOTAL: &str = "dcn.degraded_total";
    /// DCN queries that fell below the vote quorum and returned the base
    /// network's prediction.
    pub const DCN_FALLBACK_TOTAL: &str = "dcn.fallback_total";
    /// DCN queries whose base logits contained NaN/inf and were routed to
    /// the corrector fail-closed.
    pub const DCN_NONFINITE_TOTAL: &str = "dcn.nonfinite_logits_total";
    /// Corrector vote loops truncated by a deadline or vote budget.
    pub const CORRECTOR_TRUNCATED_TOTAL: &str = "corrector.truncated_total";
    /// Checkpoints written (atomic temp-then-rename completed).
    pub const CHECKPOINT_WRITES_TOTAL: &str = "checkpoint.writes_total";
    /// Training runs resumed from an on-disk checkpoint.
    pub const CHECKPOINT_RESUMES_TOTAL: &str = "checkpoint.resumes_total";
    /// Traces started (requests that entered the telemetry plane).
    pub const TRACE_STARTED_TOTAL: &str = "trace.started_total";
    /// Traces finished with a terminal outcome.
    pub const TRACE_COMPLETED_TOTAL: &str = "trace.completed_total";
    /// Trace stage: time a request waited in the admission queue.
    pub const TRACE_STAGE_ENQUEUE_WAIT: &str = "trace.enqueue_wait";
    /// Trace stage: batcher work between popping and dispatching a batch.
    pub const TRACE_STAGE_BATCH_ASSEMBLY: &str = "trace.batch_assembly";
    /// Trace stage: the stacked base-network forward + detector screen.
    pub const TRACE_STAGE_DETECTOR_FORWARD: &str = "trace.detector_forward";
    /// Trace stage: the corrector vote loop (fast or bounded path).
    pub const TRACE_STAGE_VOTE_LOOP: &str = "trace.vote_loop";
    /// Trace stage: encoding and writing the response frame.
    pub const TRACE_STAGE_WRITE_BACK: &str = "trace.write_back";
}

/// Fixed bucket upper bounds for latency histograms, in seconds (an
/// implicit `+∞` bucket follows the last bound).
pub const LATENCY_SECONDS: &[f64] = &[
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
];

/// Fixed bucket upper bounds for fractions in `[0, 1]` (vote margins,
/// utilization ratios).
pub const FRACTION: &[f64] = &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Fixed bucket upper bounds for loss-like magnitudes.
pub const MAGNITUDE: &[f64] = &[0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0];

/// Fixed bucket upper bounds for small integer quantities (worker counts,
/// per-region units in the low range).
pub const SMALL_COUNT: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

// 0 = unresolved (consult the environment once), 1 = forced off,
// 2 = forced on, 3 = environment said off, 4 = environment said on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

fn env_truthy(var: &str) -> Option<bool> {
    match std::env::var(var) {
        Ok(v) if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false") => Some(false),
        Ok(_) => Some(true),
        Err(_) => None,
    }
}

fn env_enabled() -> bool {
    // Either toggle turns collection on: DCN_OBS is the plain switch,
    // DCN_OBS_JSON implies collection because an export without metrics
    // would be empty.
    env_truthy("DCN_OBS").unwrap_or(false) || env_truthy("DCN_OBS_JSON").unwrap_or(false)
}

/// Whether metric collection is on. One relaxed atomic load on the fast
/// path — the only cost every instrumented site pays when disabled.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => {
            let on = env_enabled();
            // Cache the environment verdict; a concurrent racer stores the
            // same value, so the race is benign.
            ENABLED.store(if on { 4 } else { 3 }, Ordering::Relaxed);
            on
        }
        2 | 4 => true,
        _ => false,
    }
}

/// Programmatically forces collection on or off, overriding `DCN_OBS`.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Clears any [`set_enabled`] override, returning to the environment
/// (`DCN_OBS` / `DCN_OBS_JSON`) verdict.
pub fn clear_enabled_override() {
    ENABLED.store(0, Ordering::Relaxed);
}

/// Serializes tests that flip the global [`set_enabled`] flag so parallel
/// test threads don't observe each other's overrides.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_enabled_round_trips() {
        let _guard = test_lock();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        clear_enabled_override();
        // Environment verdict is process-dependent; just exercise the path.
        let _ = enabled();
        set_enabled(false);
    }
}
