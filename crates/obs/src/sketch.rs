//! Mergeable fixed-memory streaming quantile sketches.
//!
//! Latency distributions have no natural bucket edges: a fixed-bucket
//! histogram either wastes resolution on the body or saturates in the tail.
//! [`QuantileSketch`] is a streaming-histogram sketch in the Ben-Haim &
//! Tom-Tov style: it keeps at most `capacity` weighted centroids sorted by
//! value, and when an insert overflows the budget it merges the two
//! adjacent centroids with the smallest gap. Memory is fixed, inserts are
//! `O(log capacity)` plus an occasional `O(capacity)` compaction, and two
//! sketches merge into one with the same bound — so per-thread or
//! per-window sketches can be combined without resampling.
//!
//! Quantile queries interpolate linearly between centroid mean ranks;
//! while the stream still fits in the centroid budget the answers are
//! *exact* (every observation is its own centroid), and beyond that the
//! error is bounded by the local centroid spacing. `p50`/`p99`/`p999` from
//! the live snapshot and from `dcn-serve bench` both come from this one
//! implementation.
//!
//! Registry-backed handles ([`crate::sketch`]) wrap the value type in a
//! mutex: one short critical section per observation, taken only at call
//! sites already gated by [`crate::enabled`].

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Default centroid budget for registry-backed sketches: 64 centroids ≈
/// 1 KiB, with tail error far below the jitter of any latency measurement.
pub const DEFAULT_SKETCH_CAPACITY: usize = 64;

/// A mergeable fixed-memory quantile sketch (streaming histogram).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    capacity: usize,
    /// `(value, weight)` centroids, sorted by value, weights ≥ 1.
    centroids: Vec<(f64, u64)>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// An empty sketch holding at most `capacity` centroids (minimum 2, so
    /// min and max always survive compaction).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        QuantileSketch {
            capacity,
            centroids: Vec::with_capacity(capacity + 1),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The configured centroid budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Records one observation. Non-finite values are dropped — a NaN in a
    /// latency stream must not poison every later quantile.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.insert_centroid(v, 1);
    }

    /// Merges `other` into `self`. Merging is commutative up to the
    /// compaction tie-breaking noise: `merge(a, b)` and `merge(b, a)`
    /// answer every quantile within the local centroid spacing.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for &(v, w) in &other.centroids {
            self.insert_centroid(v, w);
        }
    }

    fn insert_centroid(&mut self, v: f64, w: u64) {
        if w == 0 {
            return;
        }
        self.count += w;
        self.sum += v * w as f64;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        let idx = self
            .centroids
            .partition_point(|&(c, _)| c < v);
        if let Some(&mut (c, ref mut cw)) = self.centroids.get_mut(idx) {
            if c == v {
                *cw += w;
                return;
            }
        }
        self.centroids.insert(idx, (v, w));
        if self.centroids.len() > self.capacity {
            self.compact();
        }
    }

    /// Merges the adjacent centroid pair with the smallest value gap
    /// (weighted mean, summed weight), restoring the capacity bound.
    fn compact(&mut self) {
        let mut best = 0usize;
        let mut best_gap = f64::INFINITY;
        for i in 0..self.centroids.len() - 1 {
            let gap = self.centroids[i + 1].0 - self.centroids[i].0;
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        let (v1, w1) = self.centroids[best];
        let (v2, w2) = self.centroids[best + 1];
        let w = w1 + w2;
        let v = (v1 * w1 as f64 + v2 * w2 as f64) / w as f64;
        self.centroids[best] = (v, w);
        self.centroids.remove(best + 1);
    }

    /// The quantile at `q ∈ [0, 1]` (clamped), by linear interpolation
    /// between centroid mean ranks; 0 when empty. `quantile(0.0)` is the
    /// exact minimum and `quantile(1.0)` the exact maximum.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * (self.count - 1) as f64;
        // Each centroid's mass sits (conceptually) at its mean rank:
        // the ranks it covers are [cum, cum + w), centered at
        // cum + (w - 1) / 2.
        let mut cum = 0u64;
        let mut prev: Option<(f64, f64)> = None; // (mean rank, value)
        for &(v, w) in &self.centroids {
            let mean_rank = cum as f64 + (w - 1) as f64 / 2.0;
            if target <= mean_rank {
                return match prev {
                    None => self.min.max(v.min(self.max)).min(v),
                    Some((pr, pv)) => {
                        let span = mean_rank - pr;
                        if span <= 0.0 {
                            v
                        } else {
                            pv + (v - pv) * (target - pr) / span
                        }
                    }
                }
                .clamp(self.min, self.max);
            }
            cum += w;
            prev = Some((mean_rank, v));
        }
        self.max
    }

    /// Forgets every observation, keeping the capacity.
    pub fn clear(&mut self) {
        self.centroids.clear();
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }
}

/// A registry-backed, thread-safe sketch handle (see [`crate::sketch`]).
#[derive(Debug)]
pub struct Sketch {
    name: String,
    inner: Mutex<QuantileSketch>,
}

impl Sketch {
    pub(crate) fn new(name: String, capacity: usize) -> Self {
        Sketch {
            name,
            inner: Mutex::new(QuantileSketch::new(capacity)),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QuantileSketch> {
        // A poisoned sketch is still structurally sound; recover rather
        // than propagating a panic into the serving path.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The sketch's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        self.lock().observe(v);
    }

    /// Merges a whole [`QuantileSketch`] (e.g. a per-thread local) in one
    /// critical section.
    pub fn absorb(&self, local: &QuantileSketch) {
        self.lock().merge(local);
    }

    /// The quantile at `q ∈ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        self.lock().quantile(q)
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.lock().count()
    }

    /// A frozen copy of the current state.
    pub fn state(&self) -> QuantileSketch {
        self.lock().clone()
    }

    pub(crate) fn zero(&self) {
        self.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_while_within_capacity() {
        let mut s = QuantileSketch::new(16);
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.observe(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(0.5), 3.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_memory_under_heavy_streams() {
        let mut s = QuantileSketch::new(32);
        for i in 0..10_000 {
            s.observe((i % 997) as f64);
        }
        assert!(s.centroids.len() <= 32);
        assert_eq!(s.count(), 10_000);
        let p50 = s.quantile(0.5);
        assert!((p50 - 498.0).abs() < 30.0, "p50 {p50}");
        let p99 = s.quantile(0.99);
        assert!(p99 > 950.0 && p99 <= 996.0, "p99 {p99}");
        assert_eq!(s.quantile(1.0), 996.0);
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let mut s = QuantileSketch::new(8);
        s.observe(f64::NAN);
        s.observe(f64::INFINITY);
        s.observe(2.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.quantile(0.5), 2.0);
    }

    #[test]
    fn merge_is_associative_within_tolerance() {
        let mut a = QuantileSketch::new(48);
        let mut b = QuantileSketch::new(48);
        for i in 0..4_000u64 {
            // Two different heavy-tailed streams.
            a.observe((i % 613) as f64 * 0.01);
            b.observe(10.0 + (i % 89) as f64);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.count(), ba.count());
        assert!((ab.sum() - ba.sum()).abs() < 1e-6 * ab.sum().abs());
        let spread = ab.max().unwrap_or(0.0) - ab.min().unwrap_or(0.0);
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let d = (ab.quantile(q) - ba.quantile(q)).abs();
            assert!(
                d <= 0.05 * spread,
                "merge order changed q{q}: {} vs {}",
                ab.quantile(q),
                ba.quantile(q)
            );
        }
    }

    #[test]
    fn handle_is_thread_safe_and_resettable() {
        // reset() zeroes the whole registry; hold the toggle lock so tests
        // snapshotting their own metrics never race the wipe.
        let _guard = crate::test_lock();
        let s = crate::sketch("sketch_test.handle");
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    for i in 0..100 {
                        s.observe((t * 100 + i) as f64);
                    }
                });
            }
        });
        assert_eq!(s.count(), 400);
        assert_eq!(s.quantile(1.0), 399.0);
        crate::reset();
        assert_eq!(s.count(), 0);
    }
}
