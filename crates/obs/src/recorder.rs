//! The flight recorder: a bounded ring of recent request verdicts, plus
//! a sliding window over detector flag decisions.
//!
//! Carlini & Wagner and Hosseini et al. both show detector-based
//! defenses being probed *over time*; the operational signature of an
//! adaptive adversary is a drifting detector flag rate under otherwise
//! steady traffic. This module keeps just enough recent history to make
//! a crash or an overload explainable after the fact:
//!
//! * [`record_event`] appends one QoS verdict (response, shed,
//!   rejection, error, shutdown) to a fixed-size ring — one short mutex
//!   section, taken only when collection or tracing is on.
//! * [`flight_json`] freezes the ring together with the span trees of
//!   every trace it references — the payload `dcn-fault` seals into
//!   `results/FLIGHT_<ts>.json` on `Overloaded`, on any `DcnError`, and
//!   on shutdown.
//! * [`record_flag`] / [`flag_window`] maintain the detector flag-rate
//!   sliding window behind the admin endpoint's drift alarm.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use crate::trace::{trace_enabled, trace_lookup};

/// Flight events retained; the oldest is evicted first.
const MAX_EVENTS: usize = 256;
/// Detector decisions covered by the flag-rate sliding window.
const FLAG_WINDOW: usize = 512;

/// One recorded QoS verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Process-local monotone sequence number (records event order
    /// without reading a wall clock).
    pub seq: u64,
    /// Verdict kind: `"response"`, `"shed"`, `"rejected"`, `"error"`,
    /// `"shutdown"`, ….
    pub kind: String,
    /// Trace id of the involved request (0 when untraced).
    pub trace_id: u64,
    /// Request id of the involved request (0 when not applicable).
    pub request_id: u64,
    /// Free-form detail (error message, queue depth, …).
    pub detail: String,
}

#[derive(Default)]
struct Ring {
    events: VecDeque<FlightEvent>,
}

fn ring() -> MutexGuard<'static, Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(Ring::default()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn next_seq() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Whether the recorder is collecting (either metric collection or
/// tracing is on).
#[inline]
pub fn recorder_enabled() -> bool {
    crate::enabled() || trace_enabled()
}

/// Appends one QoS verdict to the flight ring. No-op when both metric
/// collection and tracing are off.
pub fn record_event(kind: &str, trace_id: u64, request_id: u64, detail: &str) {
    if !recorder_enabled() {
        return;
    }
    let ev = FlightEvent {
        seq: next_seq(),
        kind: kind.to_string(),
        trace_id,
        request_id,
        detail: detail.to_string(),
    };
    let mut r = ring();
    r.events.push_back(ev);
    while r.events.len() > MAX_EVENTS {
        r.events.pop_front();
    }
}

/// Clones the flight ring, oldest first.
pub fn flight_events() -> Vec<FlightEvent> {
    ring().events.iter().cloned().collect()
}

/// Forgets all recorded events and flag decisions (test isolation).
pub fn reset_recorder() {
    ring().events.clear();
    flags().decisions.clear();
}

/// Serializes the flight ring as one JSON document: the dump `reason`,
/// every retained event, and the span tree of every trace an event
/// references (so a post-mortem includes the offending request's trace).
pub fn flight_json(reason: &str) -> String {
    let events = flight_events();
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"reason\": {},\n  \"events\": [",
        crate::snapshot::json_escape(reason)
    ));
    for (i, ev) in events.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"seq\": {}, \"kind\": {}, \"trace_id\": {}, \"request_id\": {}, \"detail\": {}}}",
            ev.seq,
            crate::snapshot::json_escape(&ev.kind),
            ev.trace_id,
            ev.request_id,
            crate::snapshot::json_escape(&ev.detail),
        ));
    }
    out.push_str(if events.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"traces\": [");
    let mut trace_ids: Vec<u64> = events.iter().map(|e| e.trace_id).filter(|&id| id != 0).collect();
    trace_ids.sort_unstable();
    trace_ids.dedup();
    let mut first = true;
    for id in trace_ids {
        if let Some(rec) = trace_lookup(id) {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str("    ");
            out.push_str(&rec.to_json());
        }
    }
    out.push_str(if first { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

#[derive(Default)]
struct FlagWindow {
    decisions: VecDeque<bool>,
}

fn flags() -> MutexGuard<'static, FlagWindow> {
    static FLAGS: OnceLock<Mutex<FlagWindow>> = OnceLock::new();
    FLAGS
        .get_or_init(|| Mutex::new(FlagWindow::default()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Records one detector decision into the sliding window. No-op when
/// both metric collection and tracing are off.
pub fn record_flag(flagged: bool) {
    if !recorder_enabled() {
        return;
    }
    let mut w = flags();
    w.decisions.push_back(flagged);
    while w.decisions.len() > FLAG_WINDOW {
        w.decisions.pop_front();
    }
}

/// `(window, flagged, rate)` over the most recent detector decisions:
/// how many decisions the window holds, how many were flagged, and the
/// flagged fraction (0 when empty).
pub fn flag_window() -> (u64, u64, f64) {
    let w = flags();
    let n = w.decisions.len() as u64;
    let flagged = w.decisions.iter().filter(|&&f| f).count() as u64;
    let rate = if n == 0 { 0.0 } else { flagged as f64 / n as f64 };
    (n, flagged, rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{
        mint_trace_id, set_trace_enabled, stage_clock, stage_end, trace_finish, trace_start,
        trace_test_lock,
    };

    #[test]
    fn disabled_recorder_is_inert() {
        let _guard = trace_test_lock();
        let _g2 = crate::test_lock();
        crate::set_enabled(false);
        set_trace_enabled(false);
        reset_recorder();
        record_event("response", 0, 1, "");
        record_flag(true);
        assert!(flight_events().is_empty());
        assert_eq!(flag_window(), (0, 0, 0.0));
        crate::set_enabled(false);
    }

    #[test]
    fn flight_json_embeds_referenced_traces() {
        let _guard = trace_test_lock();
        set_trace_enabled(true);
        reset_recorder();
        crate::trace::reset_traces();
        let id = mint_trace_id();
        trace_start(id, 9);
        let c = stage_clock();
        stage_end(c, id, crate::names::TRACE_STAGE_VOTE_LOOP);
        trace_finish(id, "error");
        record_event("error", id, 9, "injected io");
        record_event("shutdown", 0, 0, "");
        let json = flight_json("overloaded");
        assert!(json.contains("\"reason\": \"overloaded\""), "{json}");
        assert!(json.contains("\"injected io\""), "{json}");
        assert!(json.contains(&format!("\"trace_id\": {id}")), "{json}");
        assert!(json.contains("\"trace.vote_loop\""), "{json}");
        set_trace_enabled(false);
        reset_recorder();
        crate::trace::reset_traces();
    }

    #[test]
    fn ring_and_window_stay_bounded() {
        let _guard = trace_test_lock();
        set_trace_enabled(true);
        reset_recorder();
        let iters = FLAG_WINDOW + 50;
        for i in 0..iters {
            record_event("response", 0, i as u64, "");
            record_flag(i % 4 == 0);
        }
        let events = flight_events();
        assert_eq!(events.len(), MAX_EVENTS);
        // Oldest evicted first: the surviving prefix starts past the overflow.
        assert_eq!(events[0].request_id, (iters - MAX_EVENTS) as u64);
        let (n, flagged, rate) = flag_window();
        assert_eq!(n, FLAG_WINDOW as u64);
        assert!(flagged > 0 && rate > 0.0 && rate < 1.0);
        set_trace_enabled(false);
        reset_recorder();
    }
}
