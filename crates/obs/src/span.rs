//! Scoped span timers with a per-thread hierarchy.
//!
//! A [`Span`] is an RAII guard: creating one starts a monotonic clock,
//! dropping it records the elapsed seconds into a latency histogram named
//! `span.<path>.seconds`, where `<path>` is the `/`-joined chain of spans
//! currently open on this thread (`dcn.classify/corrector.vote`). Each
//! thread keeps its own stack, so parallel workers nest independently.
//!
//! When collection is disabled a span is fully inert: no clock read, no
//! allocation, no thread-local touch beyond construction.

use std::cell::RefCell;
use std::time::Instant;

use crate::{enabled, histogram, LATENCY_SECONDS};

thread_local! {
    /// Full dotted paths of the spans currently open on this thread.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII timer for one scoped region; see [`span`].
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
}

/// Opens a span named `name`, nested under the innermost span already open
/// on this thread. Returns an inert guard when collection is disabled.
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span { start: None };
    }
    SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        stack.push(path);
    });
    Span {
        start: Some(Instant::now()),
    }
}

impl Span {
    /// Whether this span is live (collection was enabled at creation).
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else {
            return;
        };
        let secs = start.elapsed().as_secs_f64();
        let path = SPAN_STACK.with(|stack| stack.borrow_mut().pop());
        if let Some(path) = path {
            histogram(&format!("span.{path}.seconds"), LATENCY_SECONDS).observe(secs);
            crate::counter(&format!("span.{path}.calls")).inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = crate::test_lock();
        set_enabled(false);
        let s = span("span_test.quiet");
        assert!(!s.is_recording());
        drop(s);
        SPAN_STACK.with(|stack| assert!(stack.borrow().is_empty()));
    }

    #[test]
    fn nested_spans_record_dotted_paths() {
        let _guard = crate::test_lock();
        set_enabled(true);
        {
            let _outer = span("span_test.outer");
            let _inner = span("span_test.inner");
        }
        set_enabled(false);
        let outer = histogram("span.span_test.outer.seconds", LATENCY_SECONDS);
        let inner = histogram("span.span_test.outer/span_test.inner.seconds", LATENCY_SECONDS);
        assert!(outer.count() >= 1);
        assert!(inner.count() >= 1);
        SPAN_STACK.with(|stack| assert!(stack.borrow().is_empty()));
    }
}
