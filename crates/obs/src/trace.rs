//! Per-request tracing: span trees keyed by a `TraceId`.
//!
//! A trace follows one serving request through the pipeline: the reader
//! thread mints (or adopts) a trace id, the admission queue and batcher
//! stamp stage boundaries, and `try_classify_batch` records the detector
//! forward and corrector vote loop. The result is a span tree — named
//! stages with start offsets and durations relative to the request's
//! arrival — queryable live over the admin endpoint (`trace <id>`) and
//! exportable as a Chrome `trace_event` file.
//!
//! Design constraints, inherited from the rest of `dcn-obs`:
//!
//! * **Off by default, zero cost when off.** Everything is gated on
//!   [`trace_enabled`] (`DCN_TRACE=1` or [`set_trace_enabled`]) — one
//!   relaxed atomic load; no clock is read and no lock is taken when
//!   tracing is off.
//! * **Bitwise non-interference.** Stage clocks are opaque tokens handed
//!   out by this module, so numeric crates never read a wall clock
//!   themselves, and nothing recorded here feeds back into any pipeline
//!   computation. Server-minted trace ids are never echoed on the wire.
//! * **Fixed memory.** Active traces and completed records both live in
//!   bounded structures; the oldest entries are evicted first.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Most traces kept in-flight before the oldest is evicted; a trace that
/// is never finished (e.g. its connection vanished) cannot leak memory.
const MAX_ACTIVE: usize = 4096;
/// Completed trace records retained for `trace <id>` lookups and export.
const MAX_DONE: usize = 512;

// Same state machine as the crate-level ENABLED flag: 0 = unresolved,
// 1 = forced off, 2 = forced on, 3 = env said off, 4 = env said on.
static TRACE_ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether per-request tracing is on (`DCN_TRACE=1` or
/// [`set_trace_enabled`]). One relaxed atomic load.
#[inline]
pub fn trace_enabled() -> bool {
    match TRACE_ENABLED.load(Ordering::Relaxed) {
        0 => {
            let on = crate::env_truthy("DCN_TRACE").unwrap_or(false);
            TRACE_ENABLED.store(if on { 4 } else { 3 }, Ordering::Relaxed);
            on
        }
        2 | 4 => true,
        _ => false,
    }
}

/// Programmatically forces tracing on or off, overriding `DCN_TRACE`.
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Clears any [`set_trace_enabled`] override, returning to the
/// environment (`DCN_TRACE`) verdict.
pub fn clear_trace_override() {
    TRACE_ENABLED.store(0, Ordering::Relaxed);
}

/// Mints a fresh nonzero trace id. Ids are process-local and
/// monotonically increasing; 0 means "untraced" everywhere.
pub fn mint_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// One recorded stage of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRecord {
    /// Stage name (one of the `trace.*` constants in [`crate::names`]).
    pub name: &'static str,
    /// Stage start, in nanoseconds after the trace started.
    pub start_ns: u64,
    /// Stage duration in nanoseconds.
    pub dur_ns: u64,
}

/// A completed (or still-running) trace: the span tree for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The trace id.
    pub trace_id: u64,
    /// The request id the trace was attached to.
    pub request_id: u64,
    /// Terminal outcome (`"ok"`, `"error"`, `"rejected"`, …); `"active"`
    /// while the request is still in flight.
    pub outcome: String,
    /// Total wall-clock from trace start to finish, in nanoseconds.
    pub total_ns: u64,
    /// Recorded stages in completion order.
    pub stages: Vec<StageRecord>,
}

impl TraceRecord {
    /// Sum of all stage durations — by construction at most `total_ns`
    /// plus scheduling noise, since stages are disjoint sub-intervals.
    pub fn stage_sum_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.dur_ns).sum()
    }

    /// Serializes the span tree as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"trace_id\": {}, \"request_id\": {}, \"outcome\": {}, \"total_ns\": {}, \"stages\": [",
            self.trace_id,
            self.request_id,
            crate::snapshot::json_escape(&self.outcome),
            self.total_ns,
        );
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": {}, \"start_ns\": {}, \"dur_ns\": {}}}",
                crate::snapshot::json_escape(s.name),
                s.start_ns,
                s.dur_ns,
            ));
        }
        out.push_str("]}");
        out
    }
}

#[derive(Debug)]
struct ActiveTrace {
    request_id: u64,
    started: Instant,
    stages: Vec<StageRecord>,
}

#[derive(Default)]
struct TraceStore {
    active: BTreeMap<u64, ActiveTrace>,
    done: VecDeque<TraceRecord>,
}

fn store() -> MutexGuard<'static, TraceStore> {
    static STORE: OnceLock<Mutex<TraceStore>> = OnceLock::new();
    STORE
        .get_or_init(|| Mutex::new(TraceStore::default()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// An opaque wall-clock token marking the start of a pipeline stage.
///
/// Handed out by [`stage_clock`] and consumed by [`stage_end`] /
/// [`stage_end_many`], so instrumented crates (including the numeric
/// ones, whose sources must stay free of clock reads) never touch a
/// clock type directly. Inert (`None`) when tracing is off.
#[derive(Debug, Clone, Copy)]
pub struct StageClock(Option<Instant>);

/// Starts a stage clock; inert when tracing is disabled.
#[inline]
pub fn stage_clock() -> StageClock {
    if trace_enabled() {
        StageClock(Some(Instant::now()))
    } else {
        StageClock(None)
    }
}

/// Begins a trace: records the arrival instant for `trace_id` (no-op for
/// id 0 or when tracing is off). Evicts the oldest active trace beyond
/// the in-flight cap.
pub fn trace_start(trace_id: u64, request_id: u64) {
    if trace_id == 0 || !trace_enabled() {
        return;
    }
    if crate::enabled() {
        crate::counter(crate::names::TRACE_STARTED_TOTAL).inc();
    }
    let mut st = store();
    st.active.insert(
        trace_id,
        ActiveTrace {
            request_id,
            started: Instant::now(),
            stages: Vec::with_capacity(8),
        },
    );
    while st.active.len() > MAX_ACTIVE {
        st.active.pop_first();
    }
}

fn push_stage(st: &mut TraceStore, trace_id: u64, name: &'static str, now: Instant, start: Instant) {
    if let Some(t) = st.active.get_mut(&trace_id) {
        let start_ns = start
            .saturating_duration_since(t.started)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        let dur_ns = now
            .saturating_duration_since(start)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        t.stages.push(StageRecord { name, start_ns, dur_ns });
    }
}

/// Ends a stage for one trace: records `[clock, now)` under `name`.
/// No-op when the clock is inert, the id is 0, or the trace is unknown.
pub fn stage_end(clock: StageClock, trace_id: u64, name: &'static str) {
    let Some(start) = clock.0 else { return };
    if trace_id == 0 {
        return;
    }
    let now = Instant::now();
    push_stage(&mut store(), trace_id, name, now, start);
}

/// Ends a shared stage for many traces at once (e.g. one stacked
/// detector forward covering a whole batch): the same `[clock, now)`
/// interval is recorded under `name` for every nonzero id.
pub fn stage_end_many(clock: StageClock, trace_ids: &[u64], name: &'static str) {
    let Some(start) = clock.0 else { return };
    if trace_ids.iter().all(|&id| id == 0) {
        return;
    }
    let now = Instant::now();
    let mut st = store();
    for &id in trace_ids {
        if id != 0 {
            push_stage(&mut st, id, name, now, start);
        }
    }
}

/// Finishes a trace with a terminal `outcome`, moving it to the
/// completed ring. No-op for id 0, unknown ids, or when tracing is off.
pub fn trace_finish(trace_id: u64, outcome: &str) {
    if trace_id == 0 || !trace_enabled() {
        return;
    }
    let mut st = store();
    let Some(t) = st.active.remove(&trace_id) else {
        return;
    };
    let total_ns = t.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    st.done.push_back(TraceRecord {
        trace_id,
        request_id: t.request_id,
        outcome: outcome.to_string(),
        total_ns,
        stages: t.stages,
    });
    while st.done.len() > MAX_DONE {
        st.done.pop_front();
    }
    drop(st);
    if crate::enabled() {
        crate::counter(crate::names::TRACE_COMPLETED_TOTAL).inc();
    }
}

/// Looks up a trace by id: completed records first, then in-flight ones
/// (reported with outcome `"active"` and the elapsed time so far).
pub fn trace_lookup(trace_id: u64) -> Option<TraceRecord> {
    let st = store();
    if let Some(r) = st.done.iter().rev().find(|r| r.trace_id == trace_id) {
        return Some(r.clone());
    }
    st.active.get(&trace_id).map(|t| TraceRecord {
        trace_id,
        request_id: t.request_id,
        outcome: "active".to_string(),
        total_ns: t.started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        stages: t.stages.clone(),
    })
}

/// Clones the completed-trace ring, oldest first.
pub fn completed_traces() -> Vec<TraceRecord> {
    store().done.iter().cloned().collect()
}

/// Forgets all active and completed traces (test/bench isolation).
pub fn reset_traces() {
    let mut st = store();
    st.active.clear();
    st.done.clear();
}

/// Renders completed traces as a Chrome `trace_event` JSON array
/// (load via `chrome://tracing` or <https://ui.perfetto.dev>). Each
/// trace gets its own `tid`; timestamps are microseconds relative to
/// that trace's start.
pub fn chrome_trace() -> String {
    let records = completed_traces();
    let mut out = String::from("[");
    let mut first = true;
    for r in &records {
        for s in &r.stages {
            if !first {
                out.push_str(",\n ");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\": {}, \"cat\": \"dcn\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"request_id\": {}, \"outcome\": {}}}}}",
                crate::snapshot::json_escape(s.name),
                crate::snapshot::json_f64(s.start_ns as f64 / 1000.0),
                crate::snapshot::json_f64((s.dur_ns as f64 / 1000.0).max(0.001)),
                r.trace_id,
                r.request_id,
                crate::snapshot::json_escape(&r.outcome),
            ));
        }
    }
    out.push_str("]\n");
    out
}

/// Serializes tests that flip the global tracing flag.
#[cfg(test)]
pub(crate) fn trace_test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracing_is_inert() {
        let _guard = trace_test_lock();
        set_trace_enabled(false);
        let id = mint_trace_id();
        trace_start(id, 7);
        let clock = stage_clock();
        stage_end(clock, id, crate::names::TRACE_STAGE_VOTE_LOOP);
        trace_finish(id, "ok");
        assert!(trace_lookup(id).is_none());
        set_trace_enabled(false);
    }

    #[test]
    fn lifecycle_records_a_span_tree_bounded_by_wall_clock() {
        let _guard = trace_test_lock();
        set_trace_enabled(true);
        reset_traces();
        let id = mint_trace_id();
        trace_start(id, 42);
        let c1 = stage_clock();
        std::thread::sleep(std::time::Duration::from_millis(2));
        stage_end(c1, id, crate::names::TRACE_STAGE_ENQUEUE_WAIT);
        let c2 = stage_clock();
        std::thread::sleep(std::time::Duration::from_millis(1));
        stage_end_many(c2, &[id, 0], crate::names::TRACE_STAGE_DETECTOR_FORWARD);
        let active = trace_lookup(id).expect("active trace visible");
        assert_eq!(active.outcome, "active");
        trace_finish(id, "ok");
        let rec = trace_lookup(id).expect("completed trace");
        assert_eq!(rec.request_id, 42);
        assert_eq!(rec.outcome, "ok");
        assert_eq!(rec.stages.len(), 2);
        assert!(rec.stage_sum_ns() <= rec.total_ns, "{rec:?}");
        for s in &rec.stages {
            assert!(s.start_ns + s.dur_ns <= rec.total_ns, "{rec:?}");
        }
        let json = rec.to_json();
        assert!(json.contains("\"trace.enqueue_wait\""), "{json}");
        let chrome = chrome_trace();
        assert!(chrome.starts_with('[') && chrome.trim_end().ends_with(']'));
        assert!(chrome.contains("\"ph\": \"X\""), "{chrome}");
        set_trace_enabled(false);
        reset_traces();
    }

    #[test]
    fn unfinished_traces_cannot_grow_without_bound() {
        let _guard = trace_test_lock();
        set_trace_enabled(true);
        reset_traces();
        for i in 0..(MAX_ACTIVE + 10) {
            trace_start(u64::MAX - i as u64, i as u64);
        }
        assert!(store().active.len() <= MAX_ACTIVE);
        set_trace_enabled(false);
        reset_traces();
    }
}
