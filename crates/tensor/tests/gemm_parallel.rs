//! Bitwise-determinism contract of the intra-GEMM worker grid: for every
//! kernel variant (`nn`/`tn`/`nt`), the grid-parallel driver must produce
//! output **bitwise identical** to the serial tiled kernel — and to the
//! naive reference — for *any* thread budget. The grid splits work over
//! row tiles and column blocks only; the per-element ascending-k
//! accumulation never changes, so these are exact `to_bits` comparisons,
//! not approximate ones.

use dcn_tensor::{kernel, par, ParConfig};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The parallel configuration is process-global; tests that flip it must not
/// interleave, so each takes this lock for its whole body.
fn config_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Deterministic non-trivial fill mixing signs, magnitudes, and exact zeros
/// (so the zero-skip arms get exercised on ordinary inputs too).
fn fill(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let v = ((i * 37 + salt * 17 + 11) % 97) as f32 * 0.125 - 6.0;
            if (i + salt).is_multiple_of(13) {
                0.0
            } else {
                v
            }
        })
        .collect()
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length drift");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs (got {g}, want {w})"
        );
    }
}

/// Runs all three parallel drivers on one shape under every thread budget,
/// pinning each against its serial kernel and its naive reference.
fn check_shape(m: usize, k: usize, n: usize, threads: &[usize]) {
    let a_nn = fill(m * k, 1); // A: [m, k] (nn, nt row-major by rows)
    let a_tn = fill(k * m, 2); // A: [k, m] (tn reads columns)
    let b_nn = fill(k * n, 3); // B: [k, n]
    let b_nt = fill(n * k, 4); // B: [n, k]

    // Serial kernels never consult the thread budget — they ARE the contract.
    let mut serial_nn = vec![0.0f32; m * n];
    let mut serial_tn = vec![0.0f32; m * n];
    let mut serial_nt = vec![0.0f32; m * n];
    kernel::gemm_nn(&a_nn, &b_nn, &mut serial_nn, 0, m, k, n);
    kernel::gemm_tn(&a_tn, &b_nn, &mut serial_tn, 0, m, m, k, n);
    kernel::gemm_nt(&a_nn, &b_nt, &mut serial_nt, 0, m, k, n);

    // Triple-pin: the serial tiled kernels must equal the naive seeds.
    let mut naive = vec![0.0f32; m * n];
    kernel::naive_nn(&a_nn, &b_nn, &mut naive, 0, k, n);
    assert_bits_eq(&serial_nn, &naive, &format!("serial nn vs naive {m}x{k}x{n}"));
    naive.iter_mut().for_each(|v| *v = 0.0);
    kernel::naive_tn(&a_tn, &b_nn, &mut naive, 0, m, k, n);
    assert_bits_eq(&serial_tn, &naive, &format!("serial tn vs naive {m}x{k}x{n}"));
    naive.iter_mut().for_each(|v| *v = 0.0);
    kernel::naive_nt(&a_nn, &b_nt, &mut naive, 0, k, n);
    assert_bits_eq(&serial_nt, &naive, &format!("serial nt vs naive {m}x{k}x{n}"));

    for &t in threads {
        par::configure(ParConfig::with_threads(t));
        let mut out = vec![f32::NAN; m * n]; // stale garbage must be overwritten
        kernel::par_gemm_nn(&a_nn, &b_nn, &mut out, m, k, n);
        assert_bits_eq(&out, &serial_nn, &format!("par nn {m}x{k}x{n} @ {t} threads"));
        out.iter_mut().for_each(|v| *v = f32::NAN);
        kernel::par_gemm_tn(&a_tn, &b_nn, &mut out, m, k, n);
        assert_bits_eq(&out, &serial_tn, &format!("par tn {m}x{k}x{n} @ {t} threads"));
        out.iter_mut().for_each(|v| *v = f32::NAN);
        kernel::par_gemm_nt(&a_nn, &b_nt, &mut out, m, k, n);
        assert_bits_eq(&out, &serial_nt, &format!("par nt {m}x{k}x{n} @ {t} threads"));
    }
    par::reset();
}

#[test]
fn grid_parallel_gemm_is_bitwise_identical_for_any_thread_count() {
    let _guard = config_lock();
    // Odd, tile-misaligned dimensions with enough tiles and reduction depth
    // to clear the flop floor and open a real multi-worker grid.
    check_shape(33, 64, 41, &[1, 2, 3, 5, 8]);
    // Tile-aligned grid-friendly shape: 10 row tiles × 4 column blocks.
    check_shape(40, 64, 64, &[1, 2, 3, 5, 8]);
    // Row-dominant (the vote-batch silhouette): many row tiles, one block.
    check_shape(200, 48, 16, &[1, 2, 3, 5, 8]);
}

#[test]
fn degenerate_k_zero_is_all_zero_under_every_budget() {
    let _guard = config_lock();
    for t in [1, 2, 3, 8] {
        par::configure(ParConfig::with_threads(t));
        let mut out = vec![f32::NAN; 5 * 7];
        kernel::par_gemm_nn(&[], &[], &mut out, 5, 0, 7);
        assert!(
            out.iter().all(|&v| v == 0.0),
            "k=0 must zero-fill @ {t} threads"
        );
    }
    par::reset();
}

#[test]
fn degenerate_narrow_and_short_shapes_survive_every_budget() {
    let _guard = config_lock();
    // n < NR (single partial column block), rows < MR (single partial row
    // tile), and both at once — the remainder paths under the grid.
    check_shape(12, 16, kernel::NR - 7, &[1, 2, 3, 8]);
    check_shape(kernel::MR - 2, 16, 40, &[1, 2, 3, 8]);
    check_shape(kernel::MR - 1, 8, kernel::NR - 1, &[1, 2, 3, 8]);
}

#[test]
fn single_row_a_still_matches_under_column_split() {
    let _guard = config_lock();
    // One row tile and many column blocks: parallelism (if any) must come
    // from the column dimension and still be bitwise-clean.
    check_shape(1, 64, 200, &[1, 2, 3, 8]);
}

#[test]
fn all_zero_a_takes_the_skip_path_everywhere() {
    let _guard = config_lock();
    let (m, k, n) = (24, 32, 48);
    let a = vec![0.0f32; m * k];
    let b = fill(k * n, 9);
    let bt = fill(n * k, 10);
    for t in [1, 2, 3, 8] {
        par::configure(ParConfig::with_threads(t));
        let mut out = vec![f32::NAN; m * n];
        kernel::par_gemm_nn(&a, &b, &mut out, m, k, n);
        assert!(out.iter().all(|&v| v == 0.0), "zero A, nn @ {t} threads");
        out.iter_mut().for_each(|v| *v = f32::NAN);
        kernel::par_gemm_tn(&a, &b, &mut out, m, k, n);
        assert!(out.iter().all(|&v| v == 0.0), "zero A, tn @ {t} threads");
        out.iter_mut().for_each(|v| *v = f32::NAN);
        kernel::par_gemm_nt(&a, &bt, &mut out, m, k, n);
        assert!(out.iter().all(|&v| v == 0.0), "zero A, nt @ {t} threads");
    }
    par::reset();
}

#[test]
fn empty_outputs_are_no_ops_under_every_budget() {
    let _guard = config_lock();
    for t in [1, 2, 3, 8] {
        par::configure(ParConfig::with_threads(t));
        let mut out: Vec<f32> = vec![];
        kernel::par_gemm_nn(&[], &fill(3 * 4, 1), &mut out, 0, 3, 4);
        kernel::par_gemm_tn(&fill(3 * 2, 2), &[], &mut out, 2, 3, 0);
        kernel::par_gemm_nt(&[], &fill(4 * 3, 3), &mut out, 0, 3, 4);
        assert!(out.is_empty());
    }
    par::reset();
}
