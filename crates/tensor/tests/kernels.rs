//! Contract of the register-tiled GEMM layer (`dcn_tensor::kernel`): the
//! tiled public entry points must be **bitwise identical** to the retained
//! naive seed kernels across every MR/NR remainder path and thread budget,
//! and the historic zero-skip semantics must hold exactly (a `0.0` in the
//! left operand of `matmul`/`matmul_tn` contributes nothing, even against
//! NaN; `matmul_nt` has no such skip and propagates `0 · NaN`).

use dcn_tensor::kernel::{self, MR, NR};
use dcn_tensor::{matmul, matmul_into, matmul_nt, matmul_tn, par, ParConfig, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The parallel configuration is process-global; tests that flip it must not
/// interleave, so each takes this lock for its whole body.
fn config_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Random matrix with a controllable fraction of exact zeros so the
/// zero-skip branch is exercised, not just the dense path.
fn sparse_randn(shape: &[usize], zero_fraction: f32, rng: &mut StdRng) -> Tensor {
    let mut t = Tensor::randn(shape, 0.0, 1.0, rng);
    for v in t.data_mut().iter_mut() {
        if rng.gen::<f32>() < zero_fraction {
            *v = 0.0;
        }
    }
    t
}

fn naive_nn_full(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = vec![0.0f32; m * n];
    kernel::naive_nn(a.data(), b.data(), &mut out, 0, k, n);
    Tensor::from_vec(vec![m, n], out).unwrap()
}

fn naive_tn_full(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = vec![0.0f32; m * n];
    kernel::naive_tn(a.data(), b.data(), &mut out, 0, m, k, n);
    Tensor::from_vec(vec![m, n], out).unwrap()
}

fn naive_nt_full(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[0];
    let mut out = vec![0.0f32; m * n];
    kernel::naive_nt(a.data(), b.data(), &mut out, 0, k, n);
    Tensor::from_vec(vec![m, n], out).unwrap()
}

fn assert_bitwise_eq(tiled: &Tensor, naive: &Tensor, what: &str) {
    assert_eq!(tiled.shape(), naive.shape(), "{what}: shape drift");
    for (i, (t, r)) in tiled.data().iter().zip(naive.data()).enumerate() {
        assert_eq!(
            t.to_bits(),
            r.to_bits(),
            "{what}: element {i} differs (tiled {t}, naive {r})"
        );
    }
}

/// Checks all three tiled variants against their naive references for one
/// `(m, k, n)` shape, under the serial config and a 4-thread budget.
fn check_shape(m: usize, k: usize, n: usize, zero_fraction: f32, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = sparse_randn(&[m, k], zero_fraction, &mut rng);
    let b = Tensor::randn(&[k, n], 0.0, 1.0, &mut rng);
    let at = sparse_randn(&[k, m], zero_fraction, &mut rng);
    let bt = Tensor::randn(&[n, k], 0.0, 1.0, &mut rng);
    let what = format!("m={m} k={k} n={n}");
    let nn_ref = naive_nn_full(&a, &b);
    let tn_ref = naive_tn_full(&at, &b);
    let nt_ref = naive_nt_full(&a, &bt);
    for threads in [1usize, 4] {
        par::configure(if threads == 1 {
            ParConfig::serial()
        } else {
            ParConfig::with_threads(threads)
        });
        assert_bitwise_eq(&matmul(&a, &b).unwrap(), &nn_ref, &format!("nn {what} @{threads}t"));
        assert_bitwise_eq(&matmul_tn(&at, &b).unwrap(), &tn_ref, &format!("tn {what} @{threads}t"));
        assert_bitwise_eq(&matmul_nt(&a, &bt).unwrap(), &nt_ref, &format!("nt {what} @{threads}t"));
        let mut buf = vec![f32::NAN; 3]; // stale, wrong-sized: must be overwritten
        let dims = matmul_into(&a, &b, &mut buf).unwrap();
        assert_eq!(dims, (m, n), "into dims {what}");
        let into = Tensor::from_vec(vec![m, n], buf).unwrap();
        assert_bitwise_eq(&into, &nn_ref, &format!("nn-into {what} @{threads}t"));
    }
    par::reset();
}

#[test]
fn exhaustive_remainder_sweep_matches_naive_bitwise() {
    let _guard = config_lock();
    // m spans every MR remainder (1..=MR+1), n every NR remainder
    // (1..=NR+1), k hits the zero-width, tiny and multi-panel cases.
    for m in 1..=MR + 1 {
        for n in 1..=NR + 1 {
            for k in [0usize, 1, 3, 7] {
                check_shape(m, k, n, 0.3, (m * 100 + n * 10 + k) as u64);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tiled_kernels_match_naive_on_odd_shapes(
        m in 1usize..3 * MR + 2,
        k in 0usize..23,
        n in 1usize..3 * NR + 2,
        zero_fraction in 0.0f32..0.9,
        seed in 0u64..1 << 32,
    ) {
        let _guard = config_lock();
        check_shape(m, k, n, zero_fraction, seed);
    }
}

// ---------------------------------------------------------------------------
// Zero-skip semantics (satellite regression pins)
// ---------------------------------------------------------------------------

/// `matmul` skips `a[i,k] == 0.0` before multiplying, so a zero in A drops
/// even a NaN/∞ row of B instead of poisoning the output. This has been the
/// kernel's behavior since the seed and callers rely on it; the tiling must
/// not change it.
#[test]
fn matmul_zero_skip_drops_nan_contributions() {
    let _guard = config_lock();
    par::configure(ParConfig::serial());
    // Row 0 of A selects B row 1 only; B row 0 is all-NaN.
    let a = Tensor::from_vec(vec![2, 2], vec![0.0, 2.0, -0.0, 3.0]).unwrap();
    let b = Tensor::from_vec(vec![2, 3], vec![f32::NAN, f32::NAN, f32::INFINITY, 1.0, 2.0, 3.0])
        .unwrap();
    let c = matmul(&a, &b).unwrap();
    // Both +0.0 and -0.0 skip (IEEE equality), so no NaN leaks through.
    assert_eq!(c.data(), &[2.0, 4.0, 6.0, 3.0, 6.0, 9.0]);
    assert!(c.all_finite());
    par::reset();
}

#[test]
fn matmul_tn_zero_skip_drops_nan_contributions() {
    let _guard = config_lock();
    par::configure(ParConfig::serial());
    // A is [k=2, m=2] (transposed layout): column i of A is row i of Aᵀ.
    let a = Tensor::from_vec(vec![2, 2], vec![0.0, -0.0, 2.0, 3.0]).unwrap();
    let b = Tensor::from_vec(vec![2, 3], vec![f32::NAN, f32::NAN, f32::INFINITY, 1.0, 2.0, 3.0])
        .unwrap();
    let c = matmul_tn(&a, &b).unwrap();
    assert_eq!(c.data(), &[2.0, 4.0, 6.0, 3.0, 6.0, 9.0]);
    assert!(c.all_finite());
    par::reset();
}

/// `matmul_nt` is a plain dot product with **no** zero-skip: `0 · NaN` is
/// NaN and must propagate. Pinning the asymmetry keeps the three variants'
/// documented semantics honest.
#[test]
fn matmul_nt_has_no_zero_skip_and_propagates_nan() {
    let _guard = config_lock();
    par::configure(ParConfig::serial());
    let a = Tensor::from_vec(vec![1, 2], vec![0.0, 2.0]).unwrap();
    let b = Tensor::from_vec(vec![2, 2], vec![f32::NAN, 1.0, 1.0, 1.0]).unwrap();
    let c = matmul_nt(&a, &b).unwrap();
    assert!(c.data()[0].is_nan(), "0·NaN must poison the nt dot product");
    assert_eq!(c.data()[1], 2.0);
    par::reset();
}
