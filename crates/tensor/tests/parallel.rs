//! Determinism contract of the parallel executor: for every parallelized
//! primitive, the output under any thread budget is **bitwise identical** to
//! the `threads = 1` legacy serial path. These tests compare raw `f32` bit
//! patterns, not approximate values — the guarantee is exact equality, and
//! any reordering of a per-unit reduction would trip it.

use dcn_tensor::{col2im, im2col, matmul, matmul_nt, matmul_tn, par, Conv2dGeometry, ParConfig, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The parallel configuration is process-global; tests that flip it must not
/// interleave, so each takes this lock for its whole body.
fn config_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn assert_bitwise_eq(serial: &Tensor, parallel: &Tensor, what: &str) {
    assert_eq!(serial.shape(), parallel.shape(), "{what}: shape drift");
    for (i, (s, p)) in serial.data().iter().zip(parallel.data()).enumerate() {
        assert_eq!(
            s.to_bits(),
            p.to_bits(),
            "{what}: element {i} differs (serial {s}, parallel {p})"
        );
    }
}

/// Runs `compute` once under the serial config and once per thread budget,
/// asserting bitwise-equal outputs throughout.
fn check_bitwise<F: Fn() -> Tensor>(what: &str, compute: F) {
    par::configure(ParConfig::serial());
    let reference = compute();
    for threads in [2, 3, 4, 8] {
        par::configure(ParConfig::with_threads(threads));
        let parallel = compute();
        assert_bitwise_eq(&reference, &parallel, &format!("{what} @ {threads} threads"));
    }
    par::reset();
}

#[test]
fn matmul_is_bitwise_deterministic_across_thread_budgets() {
    let _guard = config_lock();
    let mut rng = StdRng::seed_from_u64(71);
    // Odd dimensions so the row partition is uneven at every budget.
    let a = Tensor::randn(&[13, 9], 0.0, 1.0, &mut rng);
    let b = Tensor::randn(&[9, 11], 0.0, 1.0, &mut rng);
    check_bitwise("matmul", || matmul(&a, &b).unwrap());
}

#[test]
fn matmul_tn_is_bitwise_deterministic_across_thread_budgets() {
    let _guard = config_lock();
    let mut rng = StdRng::seed_from_u64(72);
    let a = Tensor::randn(&[9, 13], 0.0, 1.0, &mut rng);
    let b = Tensor::randn(&[9, 11], 0.0, 1.0, &mut rng);
    check_bitwise("matmul_tn", || matmul_tn(&a, &b).unwrap());
}

#[test]
fn matmul_nt_is_bitwise_deterministic_across_thread_budgets() {
    let _guard = config_lock();
    let mut rng = StdRng::seed_from_u64(73);
    let a = Tensor::randn(&[13, 9], 0.0, 1.0, &mut rng);
    let b = Tensor::randn(&[11, 9], 0.0, 1.0, &mut rng);
    check_bitwise("matmul_nt", || matmul_nt(&a, &b).unwrap());
}

#[test]
fn im2col_and_col2im_are_bitwise_deterministic_across_thread_budgets() {
    let _guard = config_lock();
    let mut rng = StdRng::seed_from_u64(74);
    let geom = Conv2dGeometry::new(2, 7, 7, 3, 2, 1).unwrap();
    // 5 images: not divisible by any tested thread budget.
    let x = Tensor::randn(&[5, 2, 7, 7], 0.0, 1.0, &mut rng);
    check_bitwise("im2col", || im2col(&x, &geom).unwrap());
    let cols = Tensor::randn(
        &[5 * geom.out_h() * geom.out_w(), 2 * 3 * 3],
        0.0,
        1.0,
        &mut rng,
    );
    check_bitwise("col2im", || col2im(&cols, 5, &geom).unwrap());
}

#[test]
fn degenerate_shapes_survive_every_thread_budget() {
    let _guard = config_lock();
    // Zero-row / zero-column products and a single-unit workload: the
    // executor must fall back to (or degenerate into) the serial path
    // without panicking on empty chunk arithmetic.
    let a0 = Tensor::zeros(&[0, 4]);
    let b = Tensor::zeros(&[4, 3]);
    check_bitwise("matmul 0-row", || matmul(&a0, &b).unwrap());
    let a = Tensor::zeros(&[2, 4]);
    let b0 = Tensor::zeros(&[4, 0]);
    check_bitwise("matmul 0-col", || matmul(&a, &b0).unwrap());
    let one = Tensor::from_vec(vec![1, 1], vec![3.0]).unwrap();
    check_bitwise("matmul 1x1", || matmul(&one, &one).unwrap());
}

#[test]
fn env_override_reports_through_config() {
    let _guard = config_lock();
    // DCN_THREADS is resolved once per process, so only the programmatic
    // layering is testable here: configure() wins, reset() restores.
    par::configure(ParConfig::with_threads(5).min_chunk(2));
    assert_eq!(ParConfig::current().threads, 5);
    assert_eq!(ParConfig::current().min_chunk, 2);
    par::reset();
    assert!(ParConfig::current().threads >= 1);
}
