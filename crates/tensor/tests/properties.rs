//! Property-based tests for the tensor substrate.
//!
//! These pin down the algebraic invariants the rest of the workspace leans
//! on: metric axioms for the three distortion distances, linearity of the
//! elementwise ops, adjointness of `im2col`/`col2im`, and serialization
//! round-trips.

use dcn_tensor::{col2im, im2col, matmul, matmul_nt, matmul_tn, Conv2dGeometry, Tensor};
use proptest::prelude::*;

const EPS: f32 = 1e-3;

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, len)
}

fn tensor_pair(len: usize) -> impl Strategy<Value = (Tensor, Tensor)> {
    (vec_f32(len), vec_f32(len)).prop_map(move |(a, b)| {
        (
            Tensor::from_vec(vec![len], a).unwrap(),
            Tensor::from_vec(vec![len], b).unwrap(),
        )
    })
}

proptest! {
    #[test]
    fn l2_distance_is_a_metric((a, b) in tensor_pair(16), c in vec_f32(16)) {
        let c = Tensor::from_vec(vec![16], c).unwrap();
        // Symmetry.
        prop_assert!((a.dist_l2(&b).unwrap() - b.dist_l2(&a).unwrap()).abs() < EPS);
        // Identity of indiscernibles (one direction).
        prop_assert!(a.dist_l2(&a).unwrap() < EPS);
        // Triangle inequality.
        let lhs = a.dist_l2(&c).unwrap();
        let rhs = a.dist_l2(&b).unwrap() + b.dist_l2(&c).unwrap();
        prop_assert!(lhs <= rhs + EPS);
    }

    #[test]
    fn linf_bounded_by_l2_bounded_by_scaled_linf((a, b) in tensor_pair(16)) {
        let linf = a.dist_linf(&b).unwrap();
        let l2 = a.dist_l2(&b).unwrap();
        prop_assert!(linf <= l2 + EPS);
        prop_assert!(l2 <= linf * 4.0 + EPS); // sqrt(16) = 4
    }

    #[test]
    fn l0_counts_at_most_all_coordinates((a, b) in tensor_pair(16)) {
        let d = a.dist_l0(&b, 1e-6).unwrap();
        prop_assert!(d <= 16);
        prop_assert_eq!(a.dist_l0(&a, 1e-6).unwrap(), 0);
    }

    #[test]
    fn add_commutes_and_sub_inverts((a, b) in tensor_pair(12)) {
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.clone(), ba);
        let back = ab.sub(&b).unwrap();
        for (x, y) in back.data().iter().zip(a.data().iter()) {
            prop_assert!((x - y).abs() < EPS);
        }
    }

    #[test]
    fn scale_distributes_over_add((a, b) in tensor_pair(12), s in -5.0f32..5.0) {
        let lhs = a.add(&b).unwrap().scale(s);
        let rhs = a.scale(s).add(&b.scale(s)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn clamp_output_is_within_bounds(v in vec_f32(20), lo in -2.0f32..0.0, hi in 0.0f32..2.0) {
        let t = Tensor::from_vec(vec![20], v).unwrap();
        let c = t.clamp(lo, hi);
        prop_assert!(c.data().iter().all(|&x| x >= lo && x <= hi));
        // Idempotent.
        prop_assert_eq!(c.clamp(lo, hi), c);
    }

    #[test]
    fn argmax_points_at_maximum(v in vec_f32(9)) {
        let t = Tensor::from_vec(vec![9], v).unwrap();
        let i = t.argmax().unwrap();
        let m = t.max().unwrap();
        prop_assert_eq!(t.data()[i], m);
    }

    #[test]
    fn matmul_is_linear_in_left_operand(
        a in vec_f32(6), b in vec_f32(6), x in vec_f32(6), s in -3.0f32..3.0,
    ) {
        let a = Tensor::from_vec(vec![2, 3], a).unwrap();
        let b = Tensor::from_vec(vec![2, 3], b).unwrap();
        let x = Tensor::from_vec(vec![3, 2], x).unwrap();
        let lhs = matmul(&a.scale(s).add(&b).unwrap(), &x).unwrap();
        let rhs = matmul(&a, &x).unwrap().scale(s).add(&matmul(&b, &x).unwrap()).unwrap();
        for (p, q) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((p - q).abs() < 1e-2);
        }
    }

    #[test]
    fn transposed_products_agree_with_plain_matmul(a in vec_f32(6), b in vec_f32(8)) {
        // A: [3,2] so Aᵀ: [2,3]; B: [3,4]? — sizes: tn takes A:[k,m] B:[k,n].
        let a_km = Tensor::from_vec(vec![2, 3], a).unwrap(); // k=2, m=3
        let b_kn = Tensor::from_vec(vec![2, 4], b).unwrap(); // k=2, n=4
        // Explicit transpose of a_km.
        let mut at = vec![0.0; 6];
        for k in 0..2 { for m in 0..3 { at[m * 2 + k] = a_km.data()[k * 3 + m]; } }
        let a_mk = Tensor::from_vec(vec![3, 2], at).unwrap();
        let direct = matmul(&a_mk, &b_kn).unwrap();
        let fused = matmul_tn(&a_km, &b_kn).unwrap();
        prop_assert_eq!(direct.shape(), fused.shape());
        for (p, q) in direct.data().iter().zip(fused.data().iter()) {
            prop_assert!((p - q).abs() < 1e-3);
        }
        // nt: A:[m,k] · Bᵀ with B:[n,k] equals matmul against explicit Bᵀ.
        let a_mk2 = Tensor::from_vec(vec![3, 2], a_mk.data().to_vec()).unwrap();
        let b_nk = Tensor::from_vec(vec![4, 2], b_kn.data().to_vec()).unwrap();
        let mut bt = vec![0.0; 8];
        for n in 0..4 { for k in 0..2 { bt[k * 4 + n] = b_nk.data()[n * 2 + k]; } }
        let b_kn2 = Tensor::from_vec(vec![2, 4], bt).unwrap();
        let direct2 = matmul(&a_mk2, &b_kn2).unwrap();
        let fused2 = matmul_nt(&a_mk2, &b_nk).unwrap();
        for (p, q) in direct2.data().iter().zip(fused2.data().iter()) {
            prop_assert!((p - q).abs() < 1e-3);
        }
    }

    #[test]
    fn im2col_col2im_adjointness(
        x in vec_f32(2 * 6 * 6),
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let geom = Conv2dGeometry::new(1, 6, 6, 3, 1, 1).unwrap();
        let x = Tensor::from_vec(vec![2, 1, 6, 6], x).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = 2 * geom.out_h() * geom.out_w();
        let y = Tensor::randn(&[rows, geom.patch_len()], 0.0, 1.0, &mut rng);
        let lhs = im2col(&x, &geom).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&col2im(&y, 2, &geom).unwrap()).unwrap();
        let scale = lhs.abs().max(1.0);
        prop_assert!((lhs - rhs).abs() / scale < 1e-3);
    }

    #[test]
    fn stack_then_unstack_is_identity(a in vec_f32(4), b in vec_f32(4), c in vec_f32(4)) {
        let items = vec![
            Tensor::from_vec(vec![2, 2], a).unwrap(),
            Tensor::from_vec(vec![2, 2], b).unwrap(),
            Tensor::from_vec(vec![2, 2], c).unwrap(),
        ];
        let stacked = Tensor::stack(&items).unwrap();
        prop_assert_eq!(stacked.shape(), &[3, 2, 2]);
        prop_assert_eq!(stacked.unstack().unwrap(), items);
    }

    #[test]
    fn serde_json_round_trips(v in vec_f32(10)) {
        let t = Tensor::from_vec(vec![2, 5], v).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(t, back);
    }
}
