//! Contract of the FMA opt-in (`ParConfig::fma` / `DCN_FMA=1`): fused
//! contraction rounds once per multiply-add instead of twice, so its
//! results are **tolerance-tested** against the exact path, never bitwise —
//! but they must remain **bitwise-stable across thread counts** (the grid
//! still never splits a k-reduction) and machine-independent
//! (`f32::mul_add` has exact single-rounding semantics even via the libm
//! software fallback).
//!
//! This suite lives in its own integration-test binary so the process-wide
//! `fma = true` configuration can never race the bitwise suites: every test
//! here runs fused, and the exact references come from the `naive_*`
//! kernels, which bypass dispatch entirely.

use dcn_tensor::{kernel, par, ParConfig};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The parallel configuration is process-global; tests that flip it must not
/// interleave, so each takes this lock for its whole body.
fn config_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn fill(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|i| ((i * 29 + salt * 13 + 7) % 101) as f32 * 0.0625 - 3.0)
        .collect()
}

/// Fused-vs-exact tolerance: one rounding saved per madd step drifts each
/// element by at most ~k·ulp; these shapes keep k ≤ 64 and |acc| ≲ 1e3.
fn assert_close(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length drift");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let tol = 1e-4f32.max(w.abs() * 1e-4);
        assert!(
            (g - w).abs() <= tol,
            "{what}: element {i} off by {} (fused {g}, exact {w}, tol {tol})",
            (g - w).abs()
        );
    }
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs (got {g}, want {w})"
        );
    }
}

#[test]
fn config_carries_the_fma_flag() {
    let _guard = config_lock();
    par::configure(ParConfig::with_threads(2).fma(true));
    assert!(ParConfig::current().fma);
    par::configure(ParConfig::serial());
    assert!(!ParConfig::current().fma);
    par::reset();
}

#[test]
fn fused_kernels_stay_within_tolerance_of_exact_references() {
    let _guard = config_lock();
    par::configure(ParConfig::with_threads(2).fma(true));
    let (m, k, n) = (33, 64, 41);
    let a_nn = fill(m * k, 1);
    let a_tn = fill(k * m, 2);
    let b_nn = fill(k * n, 3);
    let b_nt = fill(n * k, 4);
    let mut exact = vec![0.0f32; m * n];
    let mut fused = vec![0.0f32; m * n];

    kernel::naive_nn(&a_nn, &b_nn, &mut exact, 0, k, n);
    kernel::par_gemm_nn(&a_nn, &b_nn, &mut fused, m, k, n);
    assert_close(&fused, &exact, "fused nn");

    exact.iter_mut().for_each(|v| *v = 0.0);
    kernel::naive_tn(&a_tn, &b_nn, &mut exact, 0, m, k, n);
    kernel::par_gemm_tn(&a_tn, &b_nn, &mut fused, m, k, n);
    assert_close(&fused, &exact, "fused tn");

    exact.iter_mut().for_each(|v| *v = 0.0);
    kernel::naive_nt(&a_nn, &b_nt, &mut exact, 0, k, n);
    kernel::par_gemm_nt(&a_nn, &b_nt, &mut fused, m, k, n);
    assert_close(&fused, &exact, "fused nt");
    par::reset();
}

#[test]
fn fused_results_are_bitwise_stable_across_thread_counts() {
    let _guard = config_lock();
    let (m, k, n) = (40, 64, 64);
    let a_nn = fill(m * k, 5);
    let a_tn = fill(k * m, 6);
    let b_nn = fill(k * n, 7);
    let b_nt = fill(n * k, 8);

    par::configure(ParConfig::with_threads(1).fma(true));
    let mut ref_nn = vec![0.0f32; m * n];
    let mut ref_tn = vec![0.0f32; m * n];
    let mut ref_nt = vec![0.0f32; m * n];
    kernel::par_gemm_nn(&a_nn, &b_nn, &mut ref_nn, m, k, n);
    kernel::par_gemm_tn(&a_tn, &b_nn, &mut ref_tn, m, k, n);
    kernel::par_gemm_nt(&a_nn, &b_nt, &mut ref_nt, m, k, n);

    for t in [2, 3, 8] {
        par::configure(ParConfig::with_threads(t).fma(true));
        let mut out = vec![f32::NAN; m * n];
        kernel::par_gemm_nn(&a_nn, &b_nn, &mut out, m, k, n);
        assert_bits_eq(&out, &ref_nn, &format!("fused nn @ {t} threads"));
        out.iter_mut().for_each(|v| *v = f32::NAN);
        kernel::par_gemm_tn(&a_tn, &b_nn, &mut out, m, k, n);
        assert_bits_eq(&out, &ref_tn, &format!("fused tn @ {t} threads"));
        out.iter_mut().for_each(|v| *v = f32::NAN);
        kernel::par_gemm_nt(&a_nn, &b_nt, &mut out, m, k, n);
        assert_bits_eq(&out, &ref_nt, &format!("fused nt @ {t} threads"));
    }
    par::reset();
}

#[test]
fn fused_zero_skip_still_drops_zero_rows() {
    let _guard = config_lock();
    par::configure(ParConfig::with_threads(2).fma(true));
    // The zero-skip contract is rounding-independent: an all-zero A row
    // yields exactly 0.0 under both policies, even against non-finite B.
    let (m, k, n) = (6, 8, 20);
    let mut a = fill(m * k, 9);
    a[2 * k..3 * k].iter_mut().for_each(|v| *v = 0.0);
    let mut b = fill(k * n, 10);
    b[0] = f32::NAN;
    let mut out = vec![f32::NAN; m * n];
    kernel::par_gemm_nn(&a, &b, &mut out, m, k, n);
    assert!(
        out[2 * n..3 * n].iter().all(|&v| v == 0.0),
        "zero row must skip NaN contributions under the fused path"
    );
    par::reset();
}
