use std::fmt;

/// Error type for all fallible operations in this crate.
///
/// Every public function in `dcn-tensor` that can fail returns
/// `Result<T, TensorError>`; the crate never panics on malformed user input
/// (only on internal invariant violations via `debug_assert!`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the supplied
    /// buffer length.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// The tensor does not have the rank (number of dimensions) required by
    /// the operation.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the supplied tensor.
        actual: usize,
    },
    /// Inner dimensions of a matrix product disagree.
    MatmulDimMismatch {
        /// `k` dimension of the left operand (columns).
        left_k: usize,
        /// `k` dimension of the right operand (rows).
        right_k: usize,
    },
    /// An index is out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape it was checked against.
        shape: Vec<usize>,
    },
    /// The operation requires a non-empty tensor but got an empty one.
    Empty,
    /// Convolution geometry is impossible (kernel larger than padded input,
    /// zero stride, and similar).
    InvalidGeometry(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected}, found rank {actual}")
            }
            TensorError::MatmulDimMismatch { left_k, right_k } => write!(
                f,
                "matmul inner dimensions disagree: left k = {left_k}, right k = {right_k}"
            ),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::Empty => write!(f, "operation requires a non-empty tensor"),
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
