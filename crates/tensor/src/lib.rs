//! # dcn-tensor
//!
//! Dense, row-major `f32` tensors backing the DCN reproduction.
//!
//! This crate is the lowest substrate of the workspace: it provides the
//! n-dimensional array type ([`Tensor`]), shape bookkeeping ([`Shape`]),
//! linear algebra ([`matmul`] and friends), and the `im2col`/`col2im`
//! transforms used by convolution layers in `dcn-nn`.
//!
//! Everything is CPU-only `f32`, which matches the scale of the paper's
//! experiments (small convolutional networks on 28×28 and 32×32 images).
//!
//! # Examples
//!
//! ```
//! use dcn_tensor::Tensor;
//!
//! # fn main() -> Result<(), dcn_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
//! let b = Tensor::ones(&[3, 2]);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data(), &[6.0, 6.0, 15.0, 15.0]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod conv;
mod error;
pub mod kernel;
mod linalg;
pub mod par;
pub mod quant;
pub mod scratch;
mod shape;
mod tensor;

pub use conv::{col2im, im2col, im2col_into, Conv2dGeometry};
pub use error::TensorError;
pub use linalg::{matmul, matmul_into, matmul_nt, matmul_tn};
pub use par::ParConfig;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
