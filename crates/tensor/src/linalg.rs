//! Matrix products on rank-2 tensors.
//!
//! Three variants are provided because the backward passes of dense and
//! convolution layers need products against transposed operands; forming the
//! transpose explicitly would double memory traffic on the hot path.
//!
//! All three run on the register-tiled micro-kernels in [`crate::kernel`],
//! parallelized *inside* the GEMM over a row-tile × column-block worker
//! grid (`kernel::par_gemm_*`); results are bitwise identical to the
//! historic naive kernels (retained in [`crate::kernel`] as `naive_*` and
//! pinned by property tests) under every thread budget.

use crate::{kernel, Result, Tensor, TensorError};

fn as_matrix(t: &Tensor) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

/// `C = A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// Runs the grid-parallel [`kernel::par_gemm_nn`]. Per output element
/// the accumulation is k-ascending with the historic zero-skip (`a[i,k] ==
/// 0.0` contributes nothing, even against non-finite `B` values), so the
/// result is bitwise identical to the pre-tiling kernel.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank-2 and
/// [`TensorError::MatmulDimMismatch`] if the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use dcn_tensor::{matmul, Tensor};
/// # fn main() -> Result<(), dcn_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0])?;
/// let b = Tensor::from_vec(vec![2, 1], vec![3.0, 4.0])?;
/// assert_eq!(matmul(&a, &b)?.data(), &[11.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, n) = matmul_dims(a, b)?;
    let mut out = vec![0.0f32; m * n];
    matmul_slices(a, b, &mut out);
    Tensor::from_vec(vec![m, n], out)
}

/// `C = A · B` written into a caller-provided buffer — the allocation-free
/// twin of [`matmul`] for scratch-backed inference paths.
///
/// `out` is resized to `m·n` and fully overwritten; with a buffer from
/// [`crate::scratch`] whose capacity has warmed up, the call performs no
/// heap allocation. Returns the output dimensions `(m, n)`.
///
/// # Errors
///
/// Exactly as [`matmul`].
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Vec<f32>) -> Result<(usize, usize)> {
    let (m, n) = matmul_dims(a, b)?;
    out.clear();
    out.resize(m * n, 0.0);
    matmul_slices(a, b, out);
    Ok((m, n))
}

fn matmul_dims(a: &Tensor, b: &Tensor) -> Result<(usize, usize)> {
    let (m, ka) = as_matrix(a)?;
    let (kb, n) = as_matrix(b)?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_k: ka,
            right_k: kb,
        });
    }
    Ok((m, n))
}

fn matmul_slices(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    let k = a.shape()[1];
    let n = b.shape()[1];
    if out.is_empty() {
        return;
    }
    // Every output element is an independent k-ascending accumulation, so
    // splitting tiles across threads is bitwise-identical to the serial loop.
    kernel::par_gemm_nn(a.data(), b.data(), out, out.len() / n, k, n);
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` — without materializing `Aᵀ`.
///
/// Tiled like [`matmul`], with the same per-element accumulation order and
/// zero-skip as the historic k-outer loop, so the result is bitwise
/// identical to it.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::MatmulDimMismatch`]
/// exactly as [`matmul`].
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ka, m) = as_matrix(a)?;
    let (kb, n) = as_matrix(b)?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_k: ka,
            right_k: kb,
        });
    }
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return Tensor::from_vec(vec![m, n], out);
    }
    kernel::par_gemm_tn(a.data(), b.data(), &mut out, m, ka, n);
    Tensor::from_vec(vec![m, n], out)
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` — without materializing `Bᵀ`.
///
/// Tiled like [`matmul`] but with **no** zero-skip: every element is a
/// plain ascending-k dot product, as it always was (so `0 · NaN` here
/// yields NaN rather than being dropped).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::MatmulDimMismatch`]
/// exactly as [`matmul`].
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = as_matrix(a)?;
    let (n, kb) = as_matrix(b)?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_k: ka,
            right_k: kb,
        });
    }
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return Tensor::from_vec(vec![m, n], out);
    }
    kernel::par_gemm_nt(a.data(), b.data(), &mut out, m, ka, n);
    Tensor::from_vec(vec![m, n], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let id = t(&[2, 2], &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &id).unwrap(), a);
        assert_eq!(matmul(&id, &a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = t(&[2, 3], &[0.0; 6]);
        let b = t(&[2, 3], &[0.0; 6]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { left_k: 3, right_k: 2 })
        ));
        let v = Tensor::from_slice(&[1.0]);
        assert!(matmul(&v, &b).is_err());
    }

    #[test]
    fn matmul_into_matches_matmul_and_reuses_buffer() {
        let a = t(&[3, 4], &(0..12).map(|x| x as f32 * 0.5).collect::<Vec<_>>());
        let b = t(&[4, 5], &(0..20).map(|x| x as f32 * 0.25).collect::<Vec<_>>());
        let reference = matmul(&a, &b).unwrap();
        let mut buf = vec![f32::NAN; 64]; // stale garbage must be overwritten
        let (m, n) = matmul_into(&a, &b, &mut buf).unwrap();
        assert_eq!((m, n), (3, 5));
        assert_eq!(buf.as_slice(), reference.data());
        assert!(matmul_into(&a, &a, &mut buf).is_err());
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = t(&[3, 2], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // k=3, m=2
        let b = t(&[3, 4], &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let at = t(&[2, 3], &[1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
        assert_eq!(matmul_tn(&a, &b).unwrap(), matmul(&at, &b).unwrap());
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[4, 3], &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let bt = t(
            &[3, 4],
            &[0.0, 3.0, 6.0, 9.0, 1.0, 4.0, 7.0, 10.0, 2.0, 5.0, 8.0, 11.0],
        );
        assert_eq!(matmul_nt(&a, &b).unwrap(), matmul(&a, &bt).unwrap());
    }

    #[test]
    fn degenerate_dims_produce_empty_outputs() {
        let a = t(&[0, 3], &[]);
        let b = t(&[3, 2], &[0.0; 6]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[0, 2]);
    }

    #[test]
    fn zero_width_k_yields_zero_matrix() {
        let a = t(&[2, 0], &[]);
        let b = t(&[0, 3], &[]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        assert!(c.data().iter().all(|&x| x == 0.0));
    }
}
