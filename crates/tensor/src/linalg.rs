//! Matrix products on rank-2 tensors.
//!
//! Three variants are provided because the backward passes of dense and
//! convolution layers need products against transposed operands; forming the
//! transpose explicitly would double memory traffic on the hot path.

use crate::{par, Result, Tensor, TensorError};

fn as_matrix(t: &Tensor) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

/// Minimum flops a worker should receive before a matmul opens a parallel
/// region; below this, thread start-up dominates the row work.
const PAR_MIN_FLOPS: usize = 32_768;

/// Output rows per worker needed to clear [`PAR_MIN_FLOPS`].
fn row_floor(flops_per_row: usize) -> usize {
    PAR_MIN_FLOPS.div_ceil(flops_per_row.max(1)).max(1)
}

/// `C = A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// Uses an i-k-j loop order so the inner loop streams both `B` and `C`
/// rows contiguously — adequate for the small matrices in this workspace.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank-2 and
/// [`TensorError::MatmulDimMismatch`] if the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use dcn_tensor::{matmul, Tensor};
/// # fn main() -> Result<(), dcn_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0])?;
/// let b = Tensor::from_vec(vec![2, 1], vec![3.0, 4.0])?;
/// assert_eq!(matmul(&a, &b)?.data(), &[11.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = as_matrix(a)?;
    let (kb, n) = as_matrix(b)?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_k: ka,
            right_k: kb,
        });
    }
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return Tensor::from_vec(vec![m, n], out);
    }
    let ad = a.data();
    let bd = b.data();
    // Each output row is an independent k-ascending accumulation, so
    // chunking rows across threads is bitwise-identical to the serial loop.
    par::for_each_unit_chunk(&mut out, n, row_floor(ka * n), |first_row, chunk| {
        for (r, orow) in chunk.chunks_mut(n).enumerate() {
            let i = first_row + r;
            let arow = &ad[i * ka..(i + 1) * ka];
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = &bd[k * n..(k + 1) * n];
                for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                    *o += aik * bkj;
                }
            }
        }
    });
    Tensor::from_vec(vec![m, n], out)
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` — without materializing `Aᵀ`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::MatmulDimMismatch`]
/// exactly as [`matmul`].
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ka, m) = as_matrix(a)?;
    let (kb, n) = as_matrix(b)?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_k: ka,
            right_k: kb,
        });
    }
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return Tensor::from_vec(vec![m, n], out);
    }
    let ad = a.data();
    let bd = b.data();
    // Row-major over the output (i outer, k inner) so output rows can be
    // chunked across threads. For every element `out[i, j]` the additions
    // still happen in ascending k with the same zero-skips as the historic
    // k-outer loop, so the result is bitwise-identical to it.
    par::for_each_unit_chunk(&mut out, n, row_floor(ka * n), |first_row, chunk| {
        for (r, orow) in chunk.chunks_mut(n).enumerate() {
            let i = first_row + r;
            for k in 0..ka {
                let aki = ad[k * m + i];
                if aki == 0.0 {
                    continue;
                }
                let brow = &bd[k * n..(k + 1) * n];
                for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                    *o += aki * bkj;
                }
            }
        }
    });
    Tensor::from_vec(vec![m, n], out)
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` — without materializing `Bᵀ`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::MatmulDimMismatch`]
/// exactly as [`matmul`].
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = as_matrix(a)?;
    let (n, kb) = as_matrix(b)?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_k: ka,
            right_k: kb,
        });
    }
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return Tensor::from_vec(vec![m, n], out);
    }
    let ad = a.data();
    let bd = b.data();
    // Every element is an independent dot product; chunking output rows
    // across threads leaves each dot's accumulation order untouched.
    par::for_each_unit_chunk(&mut out, n, row_floor(ka * n), |first_row, chunk| {
        for (r, orow) in chunk.chunks_mut(n).enumerate() {
            let i = first_row + r;
            let arow = &ad[i * ka..(i + 1) * ka];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &bd[j * ka..(j + 1) * ka];
                let mut acc = 0.0;
                for (&x, &y) in arow.iter().zip(brow.iter()) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
    });
    Tensor::from_vec(vec![m, n], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let id = t(&[2, 2], &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &id).unwrap(), a);
        assert_eq!(matmul(&id, &a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = t(&[2, 3], &[0.0; 6]);
        let b = t(&[2, 3], &[0.0; 6]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { left_k: 3, right_k: 2 })
        ));
        let v = Tensor::from_slice(&[1.0]);
        assert!(matmul(&v, &b).is_err());
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = t(&[3, 2], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // k=3, m=2
        let b = t(&[3, 4], &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let at = t(&[2, 3], &[1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
        assert_eq!(matmul_tn(&a, &b).unwrap(), matmul(&at, &b).unwrap());
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[4, 3], &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let bt = t(
            &[3, 4],
            &[0.0, 3.0, 6.0, 9.0, 1.0, 4.0, 7.0, 10.0, 2.0, 5.0, 8.0, 11.0],
        );
        assert_eq!(matmul_nt(&a, &b).unwrap(), matmul(&a, &bt).unwrap());
    }

    #[test]
    fn degenerate_dims_produce_empty_outputs() {
        let a = t(&[0, 3], &[]);
        let b = t(&[3, 2], &[0.0; 6]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[0, 2]);
    }
}
