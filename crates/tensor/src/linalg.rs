//! Matrix products on rank-2 tensors.
//!
//! Three variants are provided because the backward passes of dense and
//! convolution layers need products against transposed operands; forming the
//! transpose explicitly would double memory traffic on the hot path.

use crate::{Result, Tensor, TensorError};

fn as_matrix(t: &Tensor) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

/// `C = A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// Uses an i-k-j loop order so the inner loop streams both `B` and `C`
/// rows contiguously — adequate for the small matrices in this workspace.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank-2 and
/// [`TensorError::MatmulDimMismatch`] if the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use dcn_tensor::{matmul, Tensor};
/// # fn main() -> Result<(), dcn_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0])?;
/// let b = Tensor::from_vec(vec![2, 1], vec![3.0, 4.0])?;
/// assert_eq!(matmul(&a, &b)?.data(), &[11.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = as_matrix(a)?;
    let (kb, n) = as_matrix(b)?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_k: ka,
            right_k: kb,
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        let orow = &mut out[i * n..(i + 1) * n];
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[k * n..(k + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                *o += aik * bkj;
            }
        }
    }
    Tensor::from_vec(vec![m, n], out)
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` — without materializing `Aᵀ`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::MatmulDimMismatch`]
/// exactly as [`matmul`].
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ka, m) = as_matrix(a)?;
    let (kb, n) = as_matrix(b)?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_k: ka,
            right_k: kb,
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for k in 0..ka {
        let arow = &ad[k * m..(k + 1) * m];
        let brow = &bd[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                *o += aki * bkj;
            }
        }
    }
    Tensor::from_vec(vec![m, n], out)
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` — without materializing `Bᵀ`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::MatmulDimMismatch`]
/// exactly as [`matmul`].
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = as_matrix(a)?;
    let (n, kb) = as_matrix(b)?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_k: ka,
            right_k: kb,
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        for j in 0..n {
            let brow = &bd[j * ka..(j + 1) * ka];
            let mut acc = 0.0;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(vec![m, n], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let id = t(&[2, 2], &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &id).unwrap(), a);
        assert_eq!(matmul(&id, &a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = t(&[2, 3], &[0.0; 6]);
        let b = t(&[2, 3], &[0.0; 6]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { left_k: 3, right_k: 2 })
        ));
        let v = Tensor::from_slice(&[1.0]);
        assert!(matmul(&v, &b).is_err());
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = t(&[3, 2], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // k=3, m=2
        let b = t(&[3, 4], &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let at = t(&[2, 3], &[1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
        assert_eq!(matmul_tn(&a, &b).unwrap(), matmul(&at, &b).unwrap());
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[4, 3], &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let bt = t(
            &[3, 4],
            &[0.0, 3.0, 6.0, 9.0, 1.0, 4.0, 7.0, 10.0, 2.0, 5.0, 8.0, 11.0],
        );
        assert_eq!(matmul_nt(&a, &b).unwrap(), matmul(&a, &bt).unwrap());
    }

    #[test]
    fn degenerate_dims_produce_empty_outputs() {
        let a = t(&[0, 3], &[]);
        let b = t(&[3, 2], &[0.0; 6]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[0, 2]);
    }
}
