use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};
use serde::{Deserialize, Serialize};

use crate::{Result, Shape, TensorError};

/// A dense, row-major `f32` tensor.
///
/// `Tensor` is the single array type used throughout the DCN workspace:
/// images are `[C, H, W]` or batched `[N, C, H, W]`, logits are `[N, K]`,
/// dense weights are `[In, Out]`, and so on. Data is stored contiguously in
/// row-major order.
///
/// Construction validates that buffer lengths match shape volumes; operations
/// validate operand compatibility and return [`TensorError`] on misuse.
///
/// # Examples
///
/// ```
/// use dcn_tensor::Tensor;
///
/// # fn main() -> Result<(), dcn_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(t.get(&[1, 0])?, 3.0);
/// assert_eq!(t.sum(), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor from a shape and a data buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape volume.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if shape.volume() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let shape = Shape::from(shape);
        let n = shape.volume();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let shape = Shape::from(shape);
        let n = shape.volume();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::new(vec![data.len()]),
            data: data.to_vec(),
        }
    }

    /// Creates a tensor of i.i.d. samples from `N(mean, std²)`.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or not finite (programmer error).
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], mean: f32, std: f32, rng: &mut R) -> Self {
        let dist = Normal::new(mean, std).expect("std must be finite and non-negative");
        let shape = Shape::from(shape);
        let data = (0..shape.volume()).map(|_| dist.sample(rng)).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor of i.i.d. samples from `U[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (programmer error).
    pub fn rand_uniform<R: Rng + ?Sized>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let dist = Uniform::new(lo, hi);
        let shape = Shape::from(shape);
        let data = (0..shape.volume()).map(|_| dist.sample(rng)).collect();
        Tensor { shape, data }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Dimension extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Underlying buffer, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on rank or bound violations.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on rank or bound violations.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        Tensor::from_vec(shape.to_vec(), self.data.clone())
    }

    /// Consuming variant of [`Tensor::reshape`]; avoids copying the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn into_reshaped(self, shape: &[usize]) -> Result<Tensor> {
        Tensor::from_vec(shape.to_vec(), self.data)
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::IndexOutOfBounds`] for bad row indices.
    pub fn row(&self, i: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        if i >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                shape: self.shape().to_vec(),
            });
        }
        Ok(Tensor {
            shape: Shape::new(vec![cols]),
            data: self.data[i * cols..(i + 1) * cols].to_vec(),
        })
    }

    /// Stacks rank-`r` tensors of identical shape into one rank-`r+1` tensor
    /// whose leading dimension is the batch index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty input and
    /// [`TensorError::ShapeMismatch`] if the items disagree in shape.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        let first = items.first().ok_or(TensorError::Empty)?;
        let mut data = Vec::with_capacity(first.len() * items.len());
        for t in items {
            if t.shape() != first.shape() {
                return Err(TensorError::ShapeMismatch {
                    left: first.shape().to_vec(),
                    right: t.shape().to_vec(),
                });
            }
            data.extend_from_slice(t.data());
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.shape());
        Tensor::from_vec(dims, data)
    }

    /// Splits the leading dimension, returning one tensor per batch entry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for rank-0 tensors.
    pub fn unstack(&self) -> Result<Vec<Tensor>> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let n = self.shape()[0];
        let inner: Vec<usize> = self.shape()[1..].to_vec();
        let chunk = inner.iter().product::<usize>().max(1);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(Tensor::from_vec(
                inner.clone(),
                self.data[i * chunk..(i + 1) * chunk].to_vec(),
            )?);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Elementwise ops
    // ------------------------------------------------------------------

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        self.check_same_shape(other)?;
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a * b)
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) -> Result<()> {
        self.check_same_shape(other)?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `s`, producing a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Adds `s` to every element, producing a new tensor.
    pub fn shift(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Clamps every element into `[lo, hi]`, producing a new tensor.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Whether every element is finite (no NaN or infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    // ------------------------------------------------------------------
    // Reductions and statistics
    // ------------------------------------------------------------------

    /// Sum of all elements (0 for empty tensors).
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for empty tensors.
    pub fn mean(&self) -> Result<f32> {
        if self.is_empty() {
            return Err(TensorError::Empty);
        }
        Ok(self.sum() / self.len() as f32)
    }

    /// Largest element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for empty tensors.
    pub fn max(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |m: Option<f32>, x| Some(m.map_or(x, |m| m.max(x))))
            .ok_or(TensorError::Empty)
    }

    /// Smallest element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for empty tensors.
    pub fn min(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |m: Option<f32>, x| Some(m.map_or(x, |m| m.min(x))))
            .ok_or(TensorError::Empty)
    }

    /// Linear index of the largest element (first one wins ties).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for empty tensors.
    pub fn argmax(&self) -> Result<usize> {
        if self.is_empty() {
            return Err(TensorError::Empty);
        }
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Per-row argmax of a rank-2 tensor (e.g. batched logits → labels).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices or
    /// [`TensorError::Empty`] if rows have zero width.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        if cols == 0 {
            return Err(TensorError::Empty);
        }
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            let mut best = 0;
            for (i, &x) in row.iter().enumerate() {
                if x > row[best] {
                    best = i;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Norms and distances (the paper's three distortion metrics)
    // ------------------------------------------------------------------

    /// Euclidean (`L2`) norm of the whole tensor.
    pub fn norm_l2(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// `L0` distance to `other`: number of coordinates that differ by more
    /// than `tol` in absolute value.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn dist_l0(&self, other: &Tensor, tol: f32) -> Result<usize> {
        self.check_same_shape(other)?;
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .filter(|(a, b)| (*a - *b).abs() > tol)
            .count())
    }

    /// `L2` (Euclidean) distance to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn dist_l2(&self, other: &Tensor) -> Result<f32> {
        self.check_same_shape(other)?;
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt())
    }

    /// `L∞` (max-abs) distance to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn dist_linf(&self, other: &Tensor) -> Result<f32> {
        self.check_same_shape(other)?;
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Dot product with `other` over flattened buffers.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        self.check_same_shape(other)?;
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Matrix product; see [`crate::matmul`].
    ///
    /// # Errors
    ///
    /// Propagates rank and inner-dimension mismatches.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        crate::matmul(self, other)
    }

    fn check_same_shape(&self, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().to_vec(),
                right: other.shape().to_vec(),
            });
        }
        Ok(())
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{} [", self.shape)?;
        for (i, x) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.4}")?;
        }
        if self.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![0.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![2, 2], vec![0.0; 3]),
            Err(TensorError::LengthMismatch { expected: 4, actual: 3 })
        ));
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(&[3, 4]);
        t.set(&[2, 1], 7.5).unwrap();
        assert_eq!(t.get(&[2, 1]).unwrap(), 7.5);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
        assert!(t.get(&[3, 0]).is_err());
    }

    #[test]
    fn arithmetic_checks_shapes() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[3, 2]);
        assert!(a.add(&b).is_err());
        let c = a.add(&Tensor::full(&[2, 3], 2.0)).unwrap();
        assert!(c.data().iter().all(|&x| x == 3.0));
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        a.add_scaled(&b, 0.5).unwrap();
        assert_eq!(a.data(), &[6.0, 12.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[3.0, -1.0, 4.0, -1.0]);
        assert_eq!(t.sum(), 5.0);
        assert_eq!(t.mean().unwrap(), 1.25);
        assert_eq!(t.max().unwrap(), 4.0);
        assert_eq!(t.min().unwrap(), -1.0);
        assert_eq!(t.argmax().unwrap(), 2);
    }

    #[test]
    fn empty_reductions_error() {
        let t = Tensor::zeros(&[0]);
        assert!(t.mean().is_err());
        assert!(t.max().is_err());
        assert!(t.argmax().is_err());
    }

    #[test]
    fn argmax_rows_picks_first_on_tie() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 5.0, 5.0, 0.0, 0.0, -1.0]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn distances_match_hand_computation() {
        let a = Tensor::from_slice(&[0.0, 0.0, 0.0]);
        let b = Tensor::from_slice(&[3.0, 4.0, 0.0]);
        assert_eq!(a.dist_l2(&b).unwrap(), 5.0);
        assert_eq!(a.dist_linf(&b).unwrap(), 4.0);
        assert_eq!(a.dist_l0(&b, 1e-6).unwrap(), 2);
    }

    #[test]
    fn stack_unstack_round_trip() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        let parts = s.unstack().unwrap();
        assert_eq!(parts, vec![a, b]);
    }

    #[test]
    fn stack_rejects_mixed_shapes() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(Tensor::stack(&[a, b]).is_err());
        assert!(matches!(Tensor::stack(&[]), Err(TensorError::Empty)));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let r = t.reshape(&[2, 2]).unwrap();
        assert_eq!(r.get(&[1, 1]).unwrap(), 4.0);
        assert!(t.reshape(&[3, 2]).is_err());
    }

    #[test]
    fn randn_is_reproducible_and_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[1000], 0.0, 1.0, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(7);
        let t2 = Tensor::randn(&[1000], 0.0, 1.0, &mut rng2);
        assert_eq!(t, t2);
        assert!(t.mean().unwrap().abs() < 0.15);
    }

    #[test]
    fn rand_uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::rand_uniform(&[500], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn clamp_bounds_values() {
        let t = Tensor::from_slice(&[-2.0, 0.2, 2.0]);
        assert_eq!(t.clamp(-0.5, 0.5).data(), &[-0.5, 0.2, 0.5]);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(&[3]);
        assert!(t.all_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn serde_round_trip() {
        let t = Tensor::from_vec(vec![2, 2], vec![1.0, -2.0, 3.5, 0.0]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros(&[2]);
        assert!(!format!("{t}").is_empty());
        assert!(!format!("{t:?}").is_empty());
    }
}
