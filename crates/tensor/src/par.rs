//! Deterministic data-parallel execution for batch-dimension work.
//!
//! Every hot loop in this workspace is *unit-parallel*: matmul output rows,
//! `im2col` images, forward-pass examples, corrector vote samples. Each unit
//! is computed by a pure function of the inputs, so splitting the units
//! across threads cannot change any unit's result — parallel output is
//! **bitwise identical** to the serial path. The executor here only ever
//! splits *between* units; it never splits (and therefore never reorders)
//! the floating-point reduction *inside* a unit.
//!
//! Configuration is process-global:
//!
//! * `DCN_THREADS=N` in the environment sets the thread budget (`1` forces
//!   the exact legacy serial path, `0`/unset means one thread per core).
//! * [`configure`] overrides the environment programmatically;
//!   [`reset`] returns to the environment default.
//!
//! Small workloads stay serial: a parallel region is only opened when every
//! worker would receive at least `min_chunk` units (the larger of the
//! global [`ParConfig::min_chunk`] and the call site's own floor). Nested
//! parallel regions are suppressed — a worker thread that reaches another
//! parallel primitive runs it inline, so e.g. a batch-chunked forward pass
//! that calls a parallelizable matmul does not oversubscribe the machine.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Thread budget and work floor for the parallel executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Maximum worker threads per parallel region. `1` is the exact legacy
    /// serial path (no scoped threads are spawned at all).
    pub threads: usize,
    /// Global minimum number of work units per worker; call sites may
    /// demand more for fine-grained units. Raising this biases toward the
    /// serial path for small batches.
    pub min_chunk: usize,
    /// Opt-in to the fused-multiply-add GEMM microkernels (`DCN_FMA=1`).
    ///
    /// Fused contraction performs one rounding per multiply-add instead of
    /// two, so the fused kernels are **not** bitwise-identical to the
    /// default path — they are tolerance-tested against it instead. They
    /// *are* bitwise-stable across thread counts and across machines
    /// (`f32::mul_add` has exact single-rounding semantics whether or not
    /// hardware FMA exists). Off by default; the default path stays
    /// bit-exact against the naive reference kernels.
    pub fma: bool,
}

impl ParConfig {
    /// The configuration currently in effect (override, else environment).
    pub fn current() -> Self {
        current()
    }

    /// Exact legacy serial execution.
    pub fn serial() -> Self {
        ParConfig {
            threads: 1,
            min_chunk: 1,
            fma: false,
        }
    }

    /// A budget of `threads` workers with the default work floor.
    pub fn with_threads(threads: usize) -> Self {
        ParConfig {
            threads: threads.max(1),
            min_chunk: 1,
            fma: false,
        }
    }

    /// Builder: require at least `min_chunk` units per worker.
    #[must_use]
    pub fn min_chunk(mut self, min_chunk: usize) -> Self {
        self.min_chunk = min_chunk.max(1);
        self
    }

    /// Builder: opt in to (or out of) the fused-multiply-add kernels.
    #[must_use]
    pub fn fma(mut self, fma: bool) -> Self {
        self.fma = fma;
        self
    }
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            threads: default_threads(),
            min_chunk: 1,
            fma: default_fma(),
        }
    }
}

/// Programmatic thread override; 0 = unset (fall back to the environment).
static OVERRIDE_THREADS: AtomicUsize = AtomicUsize::new(0);
/// Programmatic work-floor override; 0 = unset.
static OVERRIDE_MIN_CHUNK: AtomicUsize = AtomicUsize::new(0);
/// Programmatic FMA override; 0 = unset, 1 = forced off, 2 = forced on.
static OVERRIDE_FMA: AtomicUsize = AtomicUsize::new(0);

/// The single sanctioned environment read (registered in
/// `ci/lint/determinism_allowlist.txt`): both `DCN_THREADS` and `DCN_FMA`
/// are bootstrap settings resolved once per process through this helper,
/// and both are deterministic given their values — thread count never
/// changes results at all, and the FMA flag selects between two paths that
/// are each individually deterministic.
fn env_setting(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse::<usize>().ok())
}

/// Environment default thread budget, resolved once per process.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| match env_setting("DCN_THREADS") {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    })
}

/// Environment default for the FMA opt-in (`DCN_FMA=1`), resolved once per
/// process.
fn default_fma() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| env_setting("DCN_FMA") == Some(1))
}

/// Installs `cfg` as the process-global parallel configuration.
///
/// Takes effect for every subsequent parallel region in any thread. Use
/// [`reset`] to return to the `DCN_THREADS` / `DCN_FMA` / core-count
/// default.
pub fn configure(cfg: ParConfig) {
    OVERRIDE_THREADS.store(cfg.threads.max(1), Ordering::Relaxed);
    OVERRIDE_MIN_CHUNK.store(cfg.min_chunk.max(1), Ordering::Relaxed);
    OVERRIDE_FMA.store(if cfg.fma { 2 } else { 1 }, Ordering::Relaxed);
}

/// Clears any [`configure`] override.
pub fn reset() {
    OVERRIDE_THREADS.store(0, Ordering::Relaxed);
    OVERRIDE_MIN_CHUNK.store(0, Ordering::Relaxed);
    OVERRIDE_FMA.store(0, Ordering::Relaxed);
}

fn current() -> ParConfig {
    let t = OVERRIDE_THREADS.load(Ordering::Relaxed);
    let m = OVERRIDE_MIN_CHUNK.load(Ordering::Relaxed);
    let f = OVERRIDE_FMA.load(Ordering::Relaxed);
    ParConfig {
        threads: if t == 0 { default_threads() } else { t },
        min_chunk: m.max(1),
        fma: match f {
            0 => default_fma(),
            1 => false,
            _ => true,
        },
    }
}

thread_local! {
    /// Set while the current thread is a parallel-region worker; nested
    /// regions run inline instead of spawning.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is already inside a parallel region.
pub fn in_parallel_region() -> bool {
    IN_PARALLEL.with(Cell::get)
}

/// Worker count the executor would use for `units` units with a per-worker
/// floor of `min_units`, honoring the global configuration and the
/// nested-region guard. Returns 1 when the work would run serially.
///
/// Callers that must *prepare* per-worker inputs (e.g. splitting a batch
/// tensor) use this to skip the preparation entirely on the serial path.
pub fn planned_workers(units: usize, min_units: usize) -> usize {
    effective_threads(units, min_units)
}

/// Balanced contiguous partition of `0..units` into `workers` spans of
/// `(start, len)`, sizes differing by at most one. Companion to
/// [`planned_workers`] for call sites that pre-split their input.
pub fn partition_units(units: usize, workers: usize) -> Vec<(usize, usize)> {
    partition(units, workers.max(1))
}

/// Worker count for `units` units with a per-worker floor of `min_units`,
/// honoring the global configuration and the nested-region guard.
fn effective_threads(units: usize, min_units: usize) -> usize {
    if in_parallel_region() {
        return 1;
    }
    let cfg = current();
    if cfg.threads <= 1 {
        return 1;
    }
    let floor = min_units.max(cfg.min_chunk).max(1);
    cfg.threads.min(units / floor).max(1)
}

/// Records one parallel-region dispatch decision into the observability
/// layer. Collection-gated: costs one relaxed atomic load when disabled and
/// never influences the dispatch itself, so outputs stay bitwise identical.
fn record_region(units: usize, workers: usize) {
    if !dcn_obs::enabled() {
        return;
    }
    dcn_obs::counter(dcn_obs::names::PAR_REGIONS_TOTAL).inc();
    if workers <= 1 {
        dcn_obs::counter(dcn_obs::names::PAR_SERIAL_REGIONS_TOTAL).inc();
    }
    dcn_obs::counter(dcn_obs::names::PAR_UNITS_TOTAL).add(units as u64);
    dcn_obs::histogram(dcn_obs::names::PAR_WORKERS, dcn_obs::SMALL_COUNT).observe(workers as f64);
}

/// Balanced contiguous partition of `0..units` into `workers` spans,
/// returned as `(start, len)` pairs. Earlier spans absorb the remainder, so
/// span sizes differ by at most one.
fn partition(units: usize, workers: usize) -> Vec<(usize, usize)> {
    let base = units / workers;
    let rem = units % workers;
    let mut spans = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < rem);
        spans.push((start, len));
        start += len;
    }
    spans
}

/// Runs `f` over disjoint contiguous chunks of `data`, where `data` is a
/// sequence of equal `unit_len` records (matmul rows, images, examples).
///
/// `f(first_unit, chunk)` receives the index of its first unit and a
/// mutable slice covering whole units. Each unit must be computable
/// independently of the others — the function is called once over the whole
/// buffer on the serial path and once per worker on the parallel path, and
/// the two must write identical bytes (which they do automatically when `f`
/// treats units independently).
///
/// `min_units` is the call site's floor on units per worker; below it (or
/// when the configured budget is 1, or inside another parallel region) the
/// call degenerates to exactly `f(0, data)` on the current thread.
pub fn for_each_unit_chunk<T, F>(data: &mut [T], unit_len: usize, min_units: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    if unit_len == 0 {
        f(0, data);
        return;
    }
    let units = data.len() / unit_len;
    let workers = effective_threads(units, min_units);
    record_region(units, workers);
    if workers <= 1 {
        f(0, data);
        return;
    }
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = data;
        for (start, len) in partition(units, workers) {
            let (chunk, tail) = rest.split_at_mut(len * unit_len);
            rest = tail;
            scope.spawn(move || {
                IN_PARALLEL.with(|flag| flag.set(true));
                f(start, chunk);
            });
        }
    });
}

/// Order-preserving parallel map: `f(i, &items[i])` for every item, results
/// collected in input order.
///
/// `min_units` is the call site's floor on items per worker; below it the
/// map runs serially on the current thread, which is also the exact
/// `threads = 1` path.
pub fn par_map<T, R, F>(items: &[T], min_units: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = effective_threads(items.len(), min_units);
    record_region(items.len(), workers);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let f = &f;
    let spans = partition(items.len(), workers);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .iter()
            .map(|&(start, len)| {
                scope.spawn(move || {
                    IN_PARALLEL.with(|flag| flag.set(true));
                    items[start..start + len]
                        .iter()
                        .enumerate()
                        .map(|(off, t)| f(start + off, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("parallel worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Runs `f(worker_index)` on `workers` scoped threads — the raw primitive
/// behind the intra-GEMM 2-D partition in `crate::kernel`, where workers
/// write disjoint (row-tile-range × column-block-range) regions of one
/// output buffer and therefore cannot use the slice-splitting
/// [`for_each_unit_chunk`].
///
/// `workers <= 1` runs `f(0)` inline on the current thread (the exact
/// serial path — no threads are spawned). Each spawned worker is marked as
/// a parallel-region worker, so nested parallel primitives run inline.
/// `units` is the region's work-unit count, recorded into the
/// observability layer only.
///
/// Callers are expected to have sized `workers` through
/// [`planned_workers`], which honors the global configuration and the
/// nested-region guard.
pub fn run_workers<F>(workers: usize, units: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = workers.max(1);
    record_region(units, workers);
    if workers <= 1 {
        f(0);
        return;
    }
    let f = &f;
    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move || {
                IN_PARALLEL.with(|flag| flag.set(true));
                f(w);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_balanced_and_complete() {
        for units in 0..40 {
            for workers in 1..8 {
                let spans = partition(units, workers);
                assert_eq!(spans.len(), workers);
                assert_eq!(spans.iter().map(|&(_, l)| l).sum::<usize>(), units);
                let mut expect = 0;
                for &(start, len) in &spans {
                    assert_eq!(start, expect);
                    expect += len;
                }
                let lens: Vec<usize> = spans.iter().map(|&(_, l)| l).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn chunked_writes_cover_every_unit_once() {
        configure(ParConfig::with_threads(4));
        let mut data = vec![0u32; 7 * 3]; // 7 units of 3.
        for_each_unit_chunk(&mut data, 3, 1, |first_unit, chunk| {
            for (u, rec) in chunk.chunks_mut(3).enumerate() {
                for v in rec {
                    *v = (first_unit + u) as u32 + 1;
                }
            }
        });
        let expect: Vec<u32> = (0..7).flat_map(|u| [u + 1; 3]).collect();
        assert_eq!(data, expect);
        reset();
    }

    #[test]
    fn par_map_preserves_order() {
        configure(ParConfig::with_threads(3));
        let items: Vec<usize> = (0..17).collect();
        let out = par_map(&items, 1, |i, &v| {
            assert_eq!(i, v);
            v * 10
        });
        assert_eq!(out, (0..17).map(|v| v * 10).collect::<Vec<_>>());
        reset();
    }

    #[test]
    fn small_workloads_stay_serial() {
        configure(ParConfig::with_threads(8).min_chunk(100));
        // 7 units with a floor of 100 per worker → serial, single call.
        let mut calls = std::sync::atomic::AtomicUsize::new(0);
        let mut data = vec![0u8; 7];
        for_each_unit_chunk(&mut data, 1, 1, |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(*calls.get_mut(), 1);
        reset();
    }

    #[test]
    fn nested_regions_run_inline() {
        configure(ParConfig::with_threads(4));
        let items: Vec<usize> = (0..8).collect();
        let nested_parallel = par_map(&items, 1, |_, _| {
            assert!(in_parallel_region());
            // A nested map must not spawn: it sees the guard and runs inline.
            let inner = par_map(&[1usize, 2, 3, 4], 1, |_, &v| v);
            inner.len()
        });
        assert_eq!(nested_parallel, vec![4; 8]);
        assert!(!in_parallel_region());
        reset();
    }

    #[test]
    fn configure_and_reset_round_trip() {
        configure(ParConfig::with_threads(3).min_chunk(5));
        assert_eq!(ParConfig::current().threads, 3);
        assert_eq!(ParConfig::current().min_chunk, 5);
        reset();
        assert!(ParConfig::current().threads >= 1);
        assert_eq!(ParConfig::current().min_chunk, 1);
        assert_eq!(ParConfig::serial().threads, 1);
        assert!(!ParConfig::serial().fma);
        assert!(ParConfig::with_threads(2).fma(true).fma);
    }

    #[test]
    fn run_workers_covers_every_index_once() {
        use std::sync::atomic::AtomicU32;
        let seen: Vec<AtomicU32> = (0..5).map(|_| AtomicU32::new(0)).collect();
        run_workers(5, 5, |w| {
            assert!(in_parallel_region());
            seen[w].fetch_add(1, Ordering::Relaxed);
        });
        for s in &seen {
            assert_eq!(s.load(Ordering::Relaxed), 1);
        }
        // The serial degenerate case runs inline without marking the region.
        let inline_hits = AtomicU32::new(0);
        run_workers(1, 1, |w| {
            assert_eq!(w, 0);
            inline_hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(inline_hits.load(Ordering::Relaxed), 1);
    }
}
