//! Symmetric int8 quantization primitives for the detector fast path.
//!
//! The detector is a two-layer MLP over a `K`-dimensional logit vector —
//! matrices of a few hundred elements. At serving batch sizes its f32
//! GEMMs are memory-latency-bound, not compute-bound, which is exactly
//! where 4×-narrower operands and integer dot products win. This module
//! provides the three pieces the quantized forward needs:
//!
//! * [`QuantizedMatrix`] — per-tensor symmetric weight quantization
//!   (`scale = max|w| / 127`, values rounded and clamped to `[-127, 127]`),
//!   kept in the dense layer's natural `[in, out]` layout so the GEMM's
//!   inner loop broadcasts one activation against a contiguous output row
//!   (a shape the compiler turns into widening integer SIMD);
//! * [`quantize_rows`] — per-row dynamic activation quantization, so each
//!   example carries its own scale and a batch's verdicts cannot depend on
//!   what else happened to be in the batch;
//! * [`qgemm`] — the `i8 × i8 → i32` product with fused dequantize + bias.
//!
//! # Determinism contract
//!
//! Quantization is a *tolerance-tested boundary*: verdicts of a quantized
//! model are pinned to agree with the f32 path within an explicit
//! tolerance, never bitwise. Inside the boundary, every operation is
//! IEEE-exact and environment-independent — integer multiply-accumulate,
//! a branchless ties-away rounding built from single IEEE instructions,
//! and one f32 multiply and add per output element. No transcendental
//! functions, no libm-dependent math, no FMA: `dcn-lint`'s determinism
//! rule enforces the no-transcendentals part for every `quant` module, so
//! results are identical across machines, thread counts, and batch
//! compositions. The AVX2 dispatch below changes only instruction
//! selection, never values: integer SIMD and exact f32 ops produce the
//! same bits the scalar path does.

/// The symmetric quantization ceiling: values map to `[-127, 127]`
/// (`-128` is excluded to keep the range symmetric, so negating a
/// quantized value can never overflow).
pub const QMAX: f32 = 127.0;

/// A row-major int8 matrix with one per-tensor scale.
///
/// `dequantized(r, c) = q[r·cols + c] as f32 · scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    q: Vec<i8>,
    rows: usize,
    cols: usize,
    scale: f32,
}

/// Per-tensor symmetric scale for a slice: `max|v| / 127`, or 1.0 for an
/// all-zero (or empty) slice so the inverse is always well-defined.
fn symmetric_scale(values: &[f32]) -> f32 {
    let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        1.0
    } else {
        max_abs / QMAX
    }
}

/// Rounds and clamps one value at a given scale: nearest integer, ties
/// away from zero, computed as `trunc(y + copysign(0.5, y))` after a
/// float-domain clamp to `[-127, 127]`.
///
/// Every operation here (multiply, max/min, add, `copysign`, truncating
/// cast) is a single IEEE-exact instruction — no libm call and no
/// saturation checks, so the compiler vectorizes the per-row quantization
/// loop. The result is a fixed deterministic function of the input bits on
/// every machine; for a handful of values within one ulp of a half-step
/// boundary it may differ from `f32::round` by one quantization step,
/// which the tolerance-tested boundary absorbs. Non-finite inputs land on
/// a rail (`±127` for infinities, `-127` for NaN) — callers validate
/// finiteness upstream, this just keeps the function total.
#[inline(always)]
#[allow(clippy::manual_clamp)] // clamp() returns NaN for NaN input; the
// max/min pair rails NaN to -127, which the unchecked cast below requires
fn quantize_one(v: f32, inv_scale: f32) -> i8 {
    // `max` and `min` pass the finite operand through when the other is
    // NaN, so nothing non-finite survives to the cast.
    let y = (v * inv_scale).max(-QMAX).min(QMAX);
    let shifted = y + 0.5f32.copysign(y);
    // SAFETY: `y` is in [-127, 127] and NaN-free by the max/min pair, so
    // `shifted` is in [-127.5, 127.5] and truncation always fits in i32.
    unsafe { shifted.to_int_unchecked::<i32>() as i8 }
}

impl QuantizedMatrix {
    /// Quantizes a row-major `[rows, cols]` f32 matrix with one symmetric
    /// per-tensor scale.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_row_major(data: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "quantize: shape mismatch");
        let scale = symmetric_scale(data);
        let inv = 1.0 / scale;
        QuantizedMatrix {
            q: data.iter().map(|&v| quantize_one(v, inv)).collect(),
            rows,
            cols,
            scale,
        }
    }

    /// Quantizes the **transpose** of a row-major `[rows, cols]` matrix:
    /// the result is `[cols, rows]`. [`qgemm`] wants weights in their
    /// natural `[in, out]` layout; this is for callers whose weights are
    /// stored `[out, in]`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_transposed(data: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "quantize: shape mismatch");
        let scale = symmetric_scale(data);
        let inv = 1.0 / scale;
        let mut q = vec![0i8; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                q[c * rows + r] = quantize_one(data[r * cols + c], inv);
            }
        }
        QuantizedMatrix {
            q,
            rows: cols,
            cols: rows,
            scale,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The per-tensor scale (dequantization multiplier).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The quantized values, row-major.
    pub fn data(&self) -> &[i8] {
        &self.q
    }
}

/// Quantizes a row-major `[m, k]` activation batch with one dynamic
/// symmetric scale **per row**, writing quantized values into `q` and the
/// per-row scales into `scales`.
///
/// Per-row scales make each example's quantization a function of that
/// example alone — a verdict can never change because the batch around it
/// did (pinned by the batch-composition test in `crates/nn`).
///
/// # Panics
///
/// Panics if `src.len() != m * k`, `q.len() < m * k`, or `scales.len() < m`.
pub fn quantize_rows(src: &[f32], m: usize, k: usize, q: &mut [i8], scales: &mut [f32]) {
    assert_eq!(src.len(), m * k, "quantize_rows: shape mismatch");
    assert!(q.len() >= m * k, "quantize_rows: q too small");
    assert!(scales.len() >= m, "quantize_rows: scales too small");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 availability was just verified at runtime.
        unsafe { quantize_rows_avx2(src, m, k, q, scales) };
        return;
    }
    quantize_rows_core(src, m, k, q, scales);
}

#[inline(always)]
fn quantize_rows_core(src: &[f32], m: usize, k: usize, q: &mut [i8], scales: &mut [f32]) {
    // Fixed-width chunks give the auto-vectorizer a known trip count —
    // per-detector rows are short (k is tens, not thousands), and a
    // runtime-length loop of that size otherwise stays scalar.
    const W: usize = 8;
    for r in 0..m {
        let row = &src[r * k..(r + 1) * k];
        let scale = symmetric_scale(row);
        let inv = 1.0 / scale;
        scales[r] = scale;
        let dst = &mut q[r * k..(r + 1) * k];
        let mut chunks = row.chunks_exact(W);
        let mut dchunks = dst.chunks_exact_mut(W);
        for (d8, v8) in (&mut dchunks).zip(&mut chunks) {
            for (d, &v) in d8.iter_mut().zip(v8) {
                *d = quantize_one(v, inv);
            }
        }
        for (d, &v) in dchunks.into_remainder().iter_mut().zip(chunks.remainder()) {
            *d = quantize_one(v, inv);
        }
    }
}

/// `quantize_rows` compiled with AVX2 enabled. Every operation in the core
/// is a single IEEE-exact instruction, so the vectorized code produces the
/// same bits the scalar baseline does — only throughput changes.
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
// SAFETY: `unsafe fn` solely for the `target_feature` calling contract;
// the body is the same safe `quantize_rows_core`.
#[target_feature(enable = "avx2")]
unsafe fn quantize_rows_avx2(src: &[f32], m: usize, k: usize, q: &mut [i8], scales: &mut [f32]) {
    quantize_rows_core(src, m, k, q, scales);
}

/// Quantized affine transform: `out[i][o] = (Σ_k a[i][k] · w[k][o]) ·
/// a_scale[i] · w.scale + bias[o]` for activations `a: [m, k]` (per-row
/// scales) against weights `w: [k, out]` — the dense layer's natural
/// `[in, out]` layout.
///
/// The k-loop is outermost per example: each activation broadcasts against
/// a contiguous weight row, a shape the compiler autovectorizes into
/// widening `i8 → i32` SIMD multiply-adds with no data-dependent branches.
///
/// Accumulation is exact `i32` arithmetic (|q| ≤ 127, so `k` can reach
/// ~1.3e5 before the accumulator could saturate — detector widths are two
/// orders of magnitude smaller); dequantization is one f32 multiply and
/// one add per output element, both IEEE-exact.
///
/// # Panics
///
/// Panics if the operand shapes disagree.
pub fn qgemm(
    a: &[i8],
    a_scales: &[f32],
    w: &QuantizedMatrix,
    bias: &[f32],
    out: &mut [f32],
    m: usize,
) {
    let k = w.rows();
    let n = w.cols();
    assert!(a.len() >= m * k, "qgemm: activations too small");
    assert!(a_scales.len() >= m, "qgemm: scales too small");
    assert_eq!(bias.len(), n, "qgemm: bias width");
    assert!(out.len() >= m * n, "qgemm: out too small");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 availability was just verified at runtime.
        unsafe { qgemm_avx2(a, a_scales, w, bias, out, m) };
        return;
    }
    qgemm_core(a, a_scales, w, bias, out, m);
}

#[inline(always)]
fn qgemm_core(
    a: &[i8],
    a_scales: &[f32],
    w: &QuantizedMatrix,
    bias: &[f32],
    out: &mut [f32],
    m: usize,
) {
    let k = w.rows();
    let n = w.cols();
    // Classifier heads are this narrow (the detector's second layer has
    // n = 2): a known-width inner loop keeps the accumulators in
    // registers instead of paying per-k slice overhead for two MACs.
    match n {
        1 => return qgemm_narrow::<1>(a, a_scales, w, bias, out, m),
        2 => return qgemm_narrow::<2>(a, a_scales, w, bias, out, m),
        3 => return qgemm_narrow::<3>(a, a_scales, w, bias, out, m),
        4 => return qgemm_narrow::<4>(a, a_scales, w, bias, out, m),
        _ => {}
    }
    let mut acc = vec![0i32; n];
    for i in 0..m {
        acc.fill(0);
        // Deliberately no zero-skip: post-ReLU activations are ~half
        // zeros in random positions, and a data-dependent branch there
        // mispredicts its way past any work it saves.
        for (kk, &x) in a[i * k..(i + 1) * k].iter().enumerate() {
            let x = i32::from(x);
            let wrow = &w.data()[kk * n..(kk + 1) * n];
            for (ac, &y) in acc.iter_mut().zip(wrow) {
                *ac += x * i32::from(y);
            }
        }
        let srow = a_scales[i] * w.scale();
        for ((dst, &ac), &b0) in out[i * n..(i + 1) * n].iter_mut().zip(&acc).zip(bias) {
            *dst = ac as f32 * srow + b0;
        }
    }
}

/// The narrow-output arm of [`qgemm`]: `N` accumulators live in registers
/// and the weight walk is a single `chunks_exact` stream, so the whole
/// k-loop is branch- and bounds-check-free. Arithmetic is identical to the
/// generic arm — same integer multiply-accumulates in the same order.
#[inline(always)]
fn qgemm_narrow<const N: usize>(
    a: &[i8],
    a_scales: &[f32],
    w: &QuantizedMatrix,
    bias: &[f32],
    out: &mut [f32],
    m: usize,
) {
    let k = w.rows();
    let wd = w.data();
    for i in 0..m {
        let mut acc = [0i32; N];
        for (wrow, &x) in wd.chunks_exact(N).zip(&a[i * k..(i + 1) * k]) {
            let x = i32::from(x);
            for o in 0..N {
                acc[o] += x * i32::from(wrow[o]);
            }
        }
        let srow = a_scales[i] * w.scale();
        for o in 0..N {
            out[i * N + o] = acc[o] as f32 * srow + bias[o];
        }
    }
}

/// `qgemm` compiled with AVX2 enabled: the widening `i8 → i32` broadcast
/// loop needs SIMD integer multiplies (SSE4.1+), which the x86-64 baseline
/// lacks, so without this wrapper the hot loop stays scalar. Integer
/// arithmetic and the exact f32 dequantization are value-identical on
/// every path — dispatch changes throughput only.
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
// SAFETY: `unsafe fn` solely for the `target_feature` calling contract;
// the body is the same safe `qgemm_core`.
#[target_feature(enable = "avx2")]
unsafe fn qgemm_avx2(
    a: &[i8],
    a_scales: &[f32],
    w: &QuantizedMatrix,
    bias: &[f32],
    out: &mut [f32],
    m: usize,
) {
    qgemm_core(a, a_scales, w, bias, out, m);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_round_trips_within_half_step() {
        let data = [0.5, -1.25, 0.0, 3.0, -3.0, 1.5];
        let q = QuantizedMatrix::from_row_major(&data, 2, 3);
        assert_eq!(q.rows(), 2);
        assert_eq!(q.cols(), 3);
        // Extremes hit the rails exactly.
        assert_eq!(q.scale(), 3.0 / QMAX);
        for (orig, &qq) in data.iter().zip(q.data()) {
            let back = f32::from(qq) * q.scale();
            assert!(
                (back - orig).abs() <= q.scale() / 2.0 + 1e-6,
                "round-trip {orig} -> {back}"
            );
        }
    }

    #[test]
    fn transpose_packing_transposes() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // [2, 3]
        let q = QuantizedMatrix::from_transposed(&data, 2, 3);
        assert_eq!(q.rows(), 3);
        assert_eq!(q.cols(), 2);
        let direct = QuantizedMatrix::from_row_major(&[1.0, 4.0, 2.0, 5.0, 3.0, 6.0], 3, 2);
        assert_eq!(q, direct);
    }

    #[test]
    fn all_zero_input_gets_unit_scale() {
        let q = QuantizedMatrix::from_row_major(&[0.0; 4], 2, 2);
        assert_eq!(q.scale(), 1.0);
        assert!(q.data().iter().all(|&v| v == 0));
    }

    #[test]
    fn per_row_scales_are_independent() {
        let src = [1.0, -1.0, 100.0, -50.0]; // rows with very different ranges
        let mut q = [0i8; 4];
        let mut scales = [0.0f32; 2];
        quantize_rows(&src, 2, 2, &mut q, &mut scales);
        assert_eq!(scales[0], 1.0 / QMAX);
        assert_eq!(scales[1], 100.0 / QMAX);
        assert_eq!(q[0], 127);
        assert_eq!(q[2], 127);
    }

    #[test]
    fn qgemm_matches_f32_within_quantization_error() {
        let (m, k, n) = (3, 8, 4);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin_approx()).collect();
        let w: Vec<f32> = (0..k * n).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.2).collect();
        let bias: Vec<f32> = (0..n).map(|i| i as f32 * 0.1).collect();

        let qw = QuantizedMatrix::from_row_major(&w, k, n);
        let mut qa = vec![0i8; m * k];
        let mut scales = vec![0.0f32; m];
        quantize_rows(&a, m, k, &mut qa, &mut scales);
        let mut got = vec![0.0f32; m * n];
        qgemm(&qa, &scales, &qw, &bias, &mut got, m);

        for i in 0..m {
            for o in 0..n {
                let mut want = bias[o];
                for kk in 0..k {
                    want += a[i * k + kk] * w[kk * n + o];
                }
                // Error bound: k terms, each off by at most half a step in
                // either operand; loose 2% absolute bound for this range.
                assert!(
                    (got[i * n + o] - want).abs() < 0.05,
                    "({i},{o}): quant {} vs f32 {want}",
                    got[i * n + o]
                );
            }
        }
    }

    /// `sin` is a transcendental and the determinism lint bans it in quant
    /// modules — the *test data generator* uses a polynomial stand-in.
    trait SinApprox {
        fn sin_approx(self) -> f32;
    }
    impl SinApprox for f32 {
        fn sin_approx(self) -> f32 {
            let x = (self % 6.0) - 3.0;
            x * (1.0 - x * x / 6.0) * 0.4
        }
    }
}
