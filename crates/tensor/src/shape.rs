use serde::{Deserialize, Serialize};

use crate::{Result, TensorError};

/// Row-major shape of a [`crate::Tensor`].
///
/// A `Shape` is an ordered list of dimension extents. The rightmost dimension
/// varies fastest in memory. A rank-0 shape (no dimensions) denotes a scalar
/// with exactly one element.
///
/// # Examples
///
/// ```
/// use dcn_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flattens a multi-dimensional index into a linear offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `index` has the wrong rank
    /// or any coordinate exceeds its extent.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.0.len()
            || index.iter().zip(self.0.iter()).any(|(i, d)| i >= d)
        {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.0.clone(),
            });
        }
        let mut off = 0;
        let mut stride = 1;
        for (i, d) in index.iter().zip(self.0.iter()).rev() {
            off += i * stride;
            stride *= d;
        }
        Ok(off)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_scalar_is_one() {
        assert_eq!(Shape::new(vec![]).volume(), 1);
    }

    #[test]
    fn volume_with_zero_extent_is_zero() {
        assert_eq!(Shape::new(vec![4, 0, 2]).volume(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(vec![5]).strides(), vec![1]);
        assert!(Shape::new(vec![]).strides().is_empty());
    }

    #[test]
    fn offset_round_trips_strides() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[1, 0, 2]).unwrap(), 14);
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(vec![2, 3]);
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            s.offset(&[0]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }
}
