//! `im2col`/`col2im` lowering used by the convolution layers in `dcn-nn`.
//!
//! A convolution over a batched image tensor `[N, C, H, W]` is lowered to a
//! single matrix product: [`im2col`] gathers every receptive field into a row
//! of a patch matrix `[N·OH·OW, C·KH·KW]`, which is then multiplied against
//! the flattened kernel bank. [`col2im`] is the exact adjoint (scatter-add),
//! which is what the backward pass needs to route gradients to inputs.

use serde::{Deserialize, Serialize};

use crate::{par, Result, Tensor, TensorError};

/// Static geometry of a 2-D convolution: input extents, kernel size,
/// stride and zero padding.
///
/// # Examples
///
/// ```
/// use dcn_tensor::Conv2dGeometry;
/// # fn main() -> Result<(), dcn_tensor::TensorError> {
/// let g = Conv2dGeometry::new(1, 28, 28, 3, 1, 0)?;
/// assert_eq!((g.out_h(), g.out_w()), (26, 26));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv2dGeometry {
    in_channels: usize,
    in_h: usize,
    in_w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    out_h: usize,
    out_w: usize,
}

impl Conv2dGeometry {
    /// Builds and validates a convolution geometry with a square kernel.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] for zero-sized kernels or
    /// strides, or when the (padded) input is smaller than the kernel.
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        if kernel == 0 || stride == 0 || in_channels == 0 {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel ({kernel}), stride ({stride}) and channels ({in_channels}) must be positive"
            )));
        }
        let padded_h = in_h + 2 * padding;
        let padded_w = in_w + 2 * padding;
        if padded_h < kernel || padded_w < kernel {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {kernel} exceeds padded input {padded_h}x{padded_w}"
            )));
        }
        Ok(Conv2dGeometry {
            in_channels,
            in_h,
            in_w,
            kernel,
            stride,
            padding,
            out_h: (padded_h - kernel) / stride + 1,
            out_w: (padded_w - kernel) / stride + 1,
        })
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }
    /// Input height.
    pub fn in_h(&self) -> usize {
        self.in_h
    }
    /// Input width.
    pub fn in_w(&self) -> usize {
        self.in_w
    }
    /// Square kernel extent.
    pub fn kernel(&self) -> usize {
        self.kernel
    }
    /// Stride in both directions.
    pub fn stride(&self) -> usize {
        self.stride
    }
    /// Zero padding on each border.
    pub fn padding(&self) -> usize {
        self.padding
    }
    /// Output height.
    pub fn out_h(&self) -> usize {
        self.out_h
    }
    /// Output width.
    pub fn out_w(&self) -> usize {
        self.out_w
    }
    /// Length of one flattened receptive field (`C·KH·KW`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Gathers receptive fields of a batched image tensor into a patch matrix.
///
/// `input` must have shape `[N, C, H, W]` matching `geom`; the result has
/// shape `[N·OH·OW, C·KH·KW]`, rows ordered batch-major then row-major over
/// output positions.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::ShapeMismatch`]
/// when `input` does not match the geometry.
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    let mut out = Vec::new();
    let rows = im2col_into(input, geom, &mut out)?;
    Tensor::from_vec(vec![rows, geom.patch_len()], out)
}

/// [`im2col`] into a caller-provided buffer — the allocation-free twin for
/// scratch-backed inference paths.
///
/// `out` is resized to `N·OH·OW · C·KH·KW` (zero-filled, which supplies the
/// padding) and fully overwritten; with a warmed [`crate::scratch`] buffer
/// the call performs no heap allocation. Returns the number of patch rows
/// `N·OH·OW`.
///
/// # Errors
///
/// Exactly as [`im2col`].
pub fn im2col_into(input: &Tensor, geom: &Conv2dGeometry, out: &mut Vec<f32>) -> Result<usize> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.rank(),
        });
    }
    let dims = input.shape();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    if c != geom.in_channels || h != geom.in_h || w != geom.in_w {
        return Err(TensorError::ShapeMismatch {
            left: dims.to_vec(),
            right: vec![n, geom.in_channels, geom.in_h, geom.in_w],
        });
    }
    let (oh, ow, k, s, p) = (
        geom.out_h,
        geom.out_w,
        geom.kernel,
        geom.stride as isize,
        geom.padding as isize,
    );
    let patch = geom.patch_len();
    out.clear();
    out.resize(n * oh * ow * patch, 0.0);
    let data = input.data();
    let plane = h * w;
    // One image writes one disjoint block of patch rows; images can be
    // gathered by different threads without changing any value.
    par::for_each_unit_chunk(out, oh * ow * patch, 1, |first_img, chunk| {
        for (rel, img_rows) in chunk.chunks_mut(oh * ow * patch).enumerate() {
            let img = first_img + rel;
            let img_base = img * c * plane;
            for oy in 0..oh {
                for ox in 0..ow {
                    let row_base = (oy * ow + ox) * patch;
                    let y0 = oy as isize * s - p;
                    let x0 = ox as isize * s - p;
                    let mut col = 0usize;
                    for ch in 0..c {
                        let ch_base = img_base + ch * plane;
                        for ky in 0..k {
                            let y = y0 + ky as isize;
                            for kx in 0..k {
                                let x = x0 + kx as isize;
                                if y >= 0 && x >= 0 && (y as usize) < h && (x as usize) < w {
                                    img_rows[row_base + col] =
                                        data[ch_base + y as usize * w + x as usize];
                                }
                                col += 1;
                            }
                        }
                    }
                }
            }
        }
    });
    Ok(n * oh * ow)
}

/// Scatter-adds a patch matrix back into image space — the adjoint of
/// [`im2col`].
///
/// `cols` must have shape `[N·OH·OW, C·KH·KW]` for the given `batch` size and
/// `geom`; the result has shape `[N, C, H, W]`. Overlapping receptive fields
/// accumulate, which is exactly the gradient flow of a convolution.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `cols` does not match the
/// geometry and batch size.
pub fn col2im(cols: &Tensor, batch: usize, geom: &Conv2dGeometry) -> Result<Tensor> {
    let (oh, ow, k, s, p) = (
        geom.out_h,
        geom.out_w,
        geom.kernel,
        geom.stride as isize,
        geom.padding as isize,
    );
    let patch = geom.patch_len();
    let expected = vec![batch * oh * ow, patch];
    if cols.shape() != expected.as_slice() {
        return Err(TensorError::ShapeMismatch {
            left: cols.shape().to_vec(),
            right: expected,
        });
    }
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let plane = h * w;
    let mut out = vec![0.0f32; batch * c * plane];
    let data = cols.data();
    // Scatter-adds from one image's patch rows land only in that image's
    // output block, so images are independent units; the accumulation order
    // within an image is the serial loop's order.
    par::for_each_unit_chunk(&mut out, c * plane, 1, |first_img, chunk| {
        for (rel, img_out) in chunk.chunks_mut(c * plane).enumerate() {
            let img = first_img + rel;
            for oy in 0..oh {
                for ox in 0..ow {
                    let row_base = ((img * oh + oy) * ow + ox) * patch;
                    let y0 = oy as isize * s - p;
                    let x0 = ox as isize * s - p;
                    let mut col = 0usize;
                    for ch in 0..c {
                        let ch_base = ch * plane;
                        for ky in 0..k {
                            let y = y0 + ky as isize;
                            for kx in 0..k {
                                let x = x0 + kx as isize;
                                if y >= 0 && x >= 0 && (y as usize) < h && (x as usize) < w {
                                    img_out[ch_base + y as usize * w + x as usize] +=
                                        data[row_base + col];
                                }
                                col += 1;
                            }
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(vec![batch, c, h, w], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_computes_output_extents() {
        let g = Conv2dGeometry::new(3, 32, 32, 3, 1, 1).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (32, 32));
        let g = Conv2dGeometry::new(1, 28, 28, 2, 2, 0).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (14, 14));
    }

    #[test]
    fn geometry_rejects_impossible_configs() {
        assert!(Conv2dGeometry::new(1, 2, 2, 3, 1, 0).is_err());
        assert!(Conv2dGeometry::new(1, 8, 8, 0, 1, 0).is_err());
        assert!(Conv2dGeometry::new(1, 8, 8, 3, 0, 0).is_err());
        assert!(Conv2dGeometry::new(0, 8, 8, 3, 1, 0).is_err());
    }

    #[test]
    fn im2col_extracts_expected_patches() {
        // 1x1x3x3 image, 2x2 kernel, stride 1, no padding → 4 patches of 4.
        let img = Tensor::from_vec(
            vec![1, 1, 3, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        )
        .unwrap();
        let g = Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        let cols = im2col(&img, &g).unwrap();
        assert_eq!(cols.shape(), &[4, 4]);
        assert_eq!(cols.row(0).unwrap().data(), &[1.0, 2.0, 4.0, 5.0]);
        assert_eq!(cols.row(3).unwrap().data(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_pads_with_zeros() {
        let img = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let g = Conv2dGeometry::new(1, 2, 2, 2, 1, 1).unwrap();
        let cols = im2col(&img, &g).unwrap();
        assert_eq!(cols.shape(), &[9, 4]);
        // Top-left patch sees only the (0,0) pixel in its bottom-right slot.
        assert_eq!(cols.row(0).unwrap().data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn im2col_into_matches_im2col_and_overwrites_stale_data() {
        let img = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let g = Conv2dGeometry::new(1, 2, 2, 2, 1, 1).unwrap();
        let reference = im2col(&img, &g).unwrap();
        let mut buf = vec![f32::NAN; 100]; // stale garbage, incl. pad slots
        let rows = im2col_into(&img, &g, &mut buf).unwrap();
        assert_eq!(rows, 9);
        assert_eq!(buf.as_slice(), reference.data());
    }

    #[test]
    fn im2col_validates_input_shape() {
        let g = Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        let bad_rank = Tensor::zeros(&[1, 3, 3]);
        assert!(im2col(&bad_rank, &g).is_err());
        let bad_dims = Tensor::zeros(&[1, 2, 3, 3]);
        assert!(im2col(&bad_dims, &g).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of an adjoint; checked with a fixed seed.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(42);
        let g = Conv2dGeometry::new(2, 5, 4, 3, 2, 1).unwrap();
        let x = Tensor::randn(&[2, 2, 5, 4], 0.0, 1.0, &mut rng);
        let rows = 2 * g.out_h() * g.out_w();
        let y = Tensor::randn(&[rows, g.patch_len()], 0.0, 1.0, &mut rng);
        let lhs = im2col(&x, &g).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&col2im(&y, 2, &g).unwrap()).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn col2im_validates_cols_shape() {
        let g = Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        let bad = Tensor::zeros(&[3, 4]);
        assert!(col2im(&bad, 1, &g).is_err());
    }

    #[test]
    fn overlapping_patches_accumulate() {
        let g = Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        let cols = Tensor::ones(&[4, 4]);
        let img = col2im(&cols, 1, &g).unwrap();
        // Center pixel (1,1) is covered by all four 2x2 patches.
        assert_eq!(img.get(&[0, 0, 1, 1]).unwrap(), 4.0);
        assert_eq!(img.get(&[0, 0, 0, 0]).unwrap(), 1.0);
    }
}
