//! Per-thread, grow-only scratch workspaces for the inference fast path.
//!
//! Every forward pass through a network needs the same set of intermediate
//! buffers (`im2col` patch matrices, per-layer activations, GEMM pack
//! panels), and repeated inference — the corrector's `m` vote passes above
//! all — used to reallocate every one of them on every pass. A [`Scratch`]
//! is a pool of `Vec<f32>` buffers that are *taken* for the duration of one
//! use and *recycled* afterwards; buffer capacity only ever grows, so after
//! a warm-up pass the pool serves every subsequent request without touching
//! the heap.
//!
//! The module-level [`take`]/[`recycle`] functions operate on a pool that is
//! **per thread** (a `thread_local!`), which makes them safe to call from
//! anywhere — including inside `dcn_tensor::par` worker closures — without
//! locks and without any cross-thread coupling that could perturb results.
//! Two lifecycle caveats follow from that design:
//!
//! * On the serial path (`DCN_THREADS=1`, or nested inside a parallel
//!   region) all buffers live on the calling thread and are reused across
//!   calls indefinitely — this is the allocation-free steady state.
//! * Scoped worker threads spawned by a parallel region die when the region
//!   closes, taking their pools with them; parallel regions therefore still
//!   pay per-region allocations. The hot single-query inference path this
//!   module exists for is serial, so that is the right trade.
//!
//! Buffers are returned zero-filled, because the two biggest consumers
//! (GEMM outputs and `im2col` padding) require it and a `memset` is noise
//! next to a saved `malloc`.

use std::cell::RefCell;

/// Snapshot of a pool's lifetime counters, for tests, benches and the
/// observability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScratchStats {
    /// Buffers handed out by [`Scratch::take`].
    pub takes: u64,
    /// Takes that had to touch the heap (empty pool, or a capacity grow).
    pub heap_allocs: u64,
    /// Buffers returned by [`Scratch::put`].
    pub recycles: u64,
    /// Buffers currently resident in the pool.
    pub pooled: usize,
    /// Total capacity (in `f32` elements) currently resident in the pool.
    pub pooled_elems: usize,
}

/// A grow-only pool of reusable `f32` buffers.
///
/// [`Scratch::take`] hands out the largest-capacity free buffer, resized
/// (zero-filled) to the requested length; [`Scratch::put`] returns it. A
/// buffer's backing allocation is reused verbatim whenever its capacity
/// suffices, so a fixed workload stops allocating after its first pass.
///
/// # Examples
///
/// ```
/// use dcn_tensor::scratch::Scratch;
///
/// let mut pool = Scratch::new();
/// let buf = pool.take(128); // allocates: pool is empty
/// pool.put(buf);
/// let buf = pool.take(64); // reuses the 128-capacity buffer
/// assert!(buf.capacity() >= 128);
/// assert_eq!(pool.stats().heap_allocs, 1);
/// ```
#[derive(Debug, Default)]
pub struct Scratch {
    free: Vec<Vec<f32>>,
    free_i8: Vec<Vec<i8>>,
    stats: ScratchStats,
}

impl Scratch {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Takes a zero-filled buffer of exactly `len` elements.
    ///
    /// Best-fit: prefers the free buffer with the smallest capacity that
    /// already holds `len` (no grow); if none fits, takes the largest so
    /// that one grow covers the demand and the pool converges to a fixed
    /// working set for a fixed workload.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        self.stats.takes += 1;
        let mut buf = match self.pop_best(len) {
            Some(buf) => buf,
            None => {
                self.stats.heap_allocs += 1;
                return vec![0.0; len];
            }
        };
        if buf.capacity() < len {
            self.stats.heap_allocs += 1;
        }
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn put(&mut self, buf: Vec<f32>) {
        self.stats.recycles += 1;
        self.free.push(buf);
    }

    /// Takes a zero-filled `i8` buffer of exactly `len` elements — the
    /// [`Scratch::take`] twin for the quantized detector path's activation
    /// buffers. Same best-fit policy, same counters.
    pub fn take_i8(&mut self, len: usize) -> Vec<i8> {
        self.stats.takes += 1;
        let mut buf = match pop_best(&mut self.free_i8, len) {
            Some(buf) => buf,
            None => {
                self.stats.heap_allocs += 1;
                return vec![0; len];
            }
        };
        if buf.capacity() < len {
            self.stats.heap_allocs += 1;
        }
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Returns an `i8` buffer to the pool for later reuse.
    pub fn put_i8(&mut self, buf: Vec<i8>) {
        self.stats.recycles += 1;
        self.free_i8.push(buf);
    }

    /// Lifetime counters plus the pool's current residency. `pooled` counts
    /// f32 and i8 buffers alike; `pooled_elems` remains the f32 capacity
    /// (the i8 pool holds a few hundred bytes of detector activations).
    pub fn stats(&self) -> ScratchStats {
        let mut stats = self.stats;
        stats.pooled = self.free.len() + self.free_i8.len();
        stats.pooled_elems = self.free.iter().map(Vec::capacity).sum();
        stats
    }

    /// Drops every pooled buffer and zeroes the counters.
    pub fn clear(&mut self) {
        self.free.clear();
        self.free_i8.clear();
        self.stats = ScratchStats::default();
    }

    fn pop_best(&mut self, len: usize) -> Option<Vec<f32>> {
        pop_best(&mut self.free, len)
    }
}

/// Best-fit selection shared by the f32 and i8 pools: among buffers that
/// fit, smallest wins; a buffer that fits always beats one that doesn't;
/// among too-small buffers, largest wins (cheapest grow).
fn pop_best<T>(free: &mut Vec<Vec<T>>, len: usize) -> Option<Vec<T>> {
    let mut best: Option<(usize, usize)> = None;
    for (idx, cap) in free.iter().map(Vec::capacity).enumerate() {
        let better = match best {
            None => true,
            Some((_, best_cap)) => match (cap >= len, best_cap >= len) {
                (true, true) => cap < best_cap,
                (true, false) => true,
                (false, true) => false,
                (false, false) => cap > best_cap,
            },
        };
        if better {
            best = Some((idx, cap));
        }
    }
    best.map(|(idx, _)| free.swap_remove(idx))
}

thread_local! {
    /// The calling thread's pool. Access is via short `borrow_mut` windows
    /// in [`take`]/[`recycle`] only, so nested use (a layer taking a buffer
    /// while the network loop holds others) cannot double-borrow.
    static LOCAL: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Takes a zero-filled buffer of `len` elements from the calling thread's
/// pool.
///
/// Pair with [`recycle`]; a buffer that escapes (e.g. inside a returned
/// [`crate::Tensor`]) is simply freed by its owner and the pool replaces it
/// on the next demand — correct, but it forfeits the reuse.
pub fn take(len: usize) -> Vec<f32> {
    let buf = LOCAL.with(|s| s.borrow_mut().take(len));
    if dcn_obs::enabled() {
        dcn_obs::counter(dcn_obs::names::SCRATCH_TAKES_TOTAL).inc();
    }
    buf
}

/// Returns a buffer to the calling thread's pool.
pub fn recycle(buf: Vec<f32>) {
    LOCAL.with(|s| s.borrow_mut().put(buf));
    if dcn_obs::enabled() {
        dcn_obs::counter(dcn_obs::names::SCRATCH_RECYCLES_TOTAL).inc();
    }
}

/// Takes a zero-filled `i8` buffer from the calling thread's pool (the
/// quantized detector path's activation staging).
pub fn take_i8(len: usize) -> Vec<i8> {
    let buf = LOCAL.with(|s| s.borrow_mut().take_i8(len));
    if dcn_obs::enabled() {
        dcn_obs::counter(dcn_obs::names::SCRATCH_TAKES_TOTAL).inc();
    }
    buf
}

/// Returns an `i8` buffer to the calling thread's pool.
pub fn recycle_i8(buf: Vec<i8>) {
    LOCAL.with(|s| s.borrow_mut().put_i8(buf));
    if dcn_obs::enabled() {
        dcn_obs::counter(dcn_obs::names::SCRATCH_RECYCLES_TOTAL).inc();
    }
}

/// Counters of the calling thread's pool.
pub fn local_stats() -> ScratchStats {
    LOCAL.with(|s| s.borrow().stats())
}

/// Number of heap allocations the calling thread's pool has performed —
/// the "did the warm path touch `malloc`?" probe used by the inference
/// benches and tests.
pub fn local_heap_allocs() -> u64 {
    LOCAL.with(|s| s.borrow().stats.heap_allocs)
}

/// Empties the calling thread's pool and zeroes its counters (tests and
/// benches that need a cold start).
pub fn clear_local() {
    LOCAL.with(|s| s.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zero_fills_and_reuses_capacity() {
        let mut pool = Scratch::new();
        let mut buf = pool.take(8);
        assert_eq!(buf, vec![0.0; 8]);
        buf.iter_mut().for_each(|v| *v = 7.0);
        let cap = buf.capacity();
        pool.put(buf);
        let again = pool.take(4);
        assert_eq!(again, vec![0.0; 4]);
        assert!(again.capacity() >= cap);
        let stats = pool.stats();
        assert_eq!(stats.takes, 2);
        assert_eq!(stats.heap_allocs, 1);
        assert_eq!(stats.recycles, 1);
    }

    #[test]
    fn take_is_best_fit() {
        let mut pool = Scratch::new();
        let small = pool.take(4);
        let large = pool.take(1024);
        pool.put(small);
        pool.put(large);
        // 512 only fits in the large buffer...
        let big = pool.take(512);
        assert!(big.capacity() >= 1024);
        // ...while a small request leaves the large buffer alone.
        let little = pool.take(2);
        assert!(little.capacity() < 1024);
        assert_eq!(pool.stats().heap_allocs, 2);
    }

    #[test]
    fn warm_pool_stops_allocating() {
        let mut pool = Scratch::new();
        for _ in 0..3 {
            let a = pool.take(100);
            let b = pool.take(200);
            pool.put(a);
            pool.put(b);
        }
        // Two buffers cover the workload; only the first pass allocates.
        assert_eq!(pool.stats().heap_allocs, 2);
        assert_eq!(pool.stats().takes, 6);
    }

    #[test]
    fn growing_a_pooled_buffer_counts_as_heap_alloc() {
        let mut pool = Scratch::new();
        let buf = pool.take(4);
        pool.put(buf);
        let big = pool.take(1 << 16); // forces a capacity grow
        assert!(big.capacity() >= 1 << 16);
        assert_eq!(pool.stats().heap_allocs, 2);
    }

    #[test]
    fn thread_local_pool_round_trips() {
        clear_local();
        let buf = take(16);
        assert_eq!(buf.len(), 16);
        recycle(buf);
        let stats = local_stats();
        assert_eq!(stats.takes, 1);
        assert_eq!(stats.recycles, 1);
        assert_eq!(stats.pooled, 1);
        clear_local();
        assert_eq!(local_stats(), ScratchStats::default());
    }

    #[test]
    fn i8_pool_round_trips_and_reuses_capacity() {
        let mut pool = Scratch::new();
        let mut buf = pool.take_i8(16);
        assert_eq!(buf, vec![0i8; 16]);
        buf.iter_mut().for_each(|v| *v = 9);
        pool.put_i8(buf);
        let again = pool.take_i8(8);
        assert_eq!(again, vec![0i8; 8]);
        assert!(again.capacity() >= 16);
        // The i8 pool never serves f32 requests (and vice versa).
        let f = pool.take(8);
        assert_eq!(pool.stats().heap_allocs, 2);
        pool.put(f);
        pool.put_i8(again);
        assert_eq!(pool.stats().pooled, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let mut pool = Scratch::new();
        let buf = pool.take(32);
        pool.put(buf);
        pool.clear();
        assert_eq!(pool.stats(), ScratchStats::default());
    }
}
