//! Register-tiled GEMM micro-kernels behind [`crate::matmul`] and friends.
//!
//! # Tiling scheme
//!
//! Each kernel walks its output in `MR`×`NR` register tiles: an `MR`×`NR`
//! block of accumulators lives in registers for the whole `k` loop, and the
//! `NR`-wide slice of `B` needed at each `k` step is read from a packed,
//! contiguous *panel* (`[k, NR]`, repacked once per `NR`-column block and
//! reused by every row tile). The `tn`/`nt` kernels additionally pack each
//! row tile's `A` elements into a `[k, MR]` strip, turning their strided
//! `A` access patterns into unit-stride streams. The naive i-k-j kernels
//! this replaces stream a full `n`-length row of `C` through memory at
//! every `k` step — `m·k` passes over `C` in total; the tiled kernels touch
//! each `C` element once, which is what makes mid-sized GEMMs compute-
//! rather than memory-bound.
//!
//! # Intra-GEMM parallelism
//!
//! The `par_gemm_*` drivers split the row-tile (i) and column-block (j)
//! loops across a `wr × wc` worker grid sized by [`crate::par`]: each
//! worker owns a contiguous range of `MR`-row tiles × a contiguous range of
//! `NR`-column blocks, packs **only its own** `B` panels (and `A` strips)
//! into its thread-local scratch pool, and writes its disjoint rectangle of
//! `C` in place. The grid shape adapts to the matrix: row-dominant shapes
//! split rows, wide shapes (a batch-1 forward, an im2col product) split
//! column blocks, so parallelism survives even when one dimension is a
//! single tile.
//!
//! # Determinism
//!
//! Tiling and the worker grid are over `i`/`j` **only** — every output
//! element still accumulates its products in ascending-`k` order into a
//! single `f32`, exactly the per-element operation sequence of the naive
//! kernels. Blocking over `k` (splitting one element's reduction into
//! partial sums) would change float rounding and break the workspace's
//! bitwise-determinism contract, so it is deliberately not done: at these
//! sizes the whole `k` extent of a `B` panel (`k · NR · 4` bytes) fits in
//! L1/L2 comfortably. Panel and strip packing copy bits verbatim. The
//! result is that every tiled kernel — serial or parallel, at any
//! `DCN_THREADS` value — is **bitwise identical** to its naive reference,
//! pinned by the property tests in `tests/kernels.rs` and
//! `tests/gemm_parallel.rs`.
//!
//! The one sanctioned exception is the **FMA opt-in**
//! ([`crate::par::ParConfig::fma`] / `DCN_FMA=1`): fused contraction
//! rounds once per multiply-add instead of twice, so the fused kernels are
//! tolerance-tested against the default path rather than bitwise-pinned.
//! They remain bitwise-stable across thread counts and across machines
//! (`f32::mul_add` guarantees single-rounding semantics with or without
//! hardware FMA), pinned by `tests/fma.rs`. The default path never fuses:
//! the AVX2 dispatch enables `avx2` only, keeping LLVM's autovectorization
//! per-lane IEEE mul-then-add.
//!
//! # Zero-skip semantics
//!
//! The historic `matmul`/`matmul_tn` kernels skip the whole `j` loop when
//! an `A` element is exactly `0.0` (`if aik == 0.0 { continue }`) — a win
//! on post-ReLU activations, and load-bearing for NaN propagation:
//! `0 · NaN` contributions are *dropped*, not turned into NaN. The tiled
//! kernels preserve this skip per `(row, k)` step, and `matmul_nt` remains
//! skip-free (a plain dot product that lets `0 · NaN` poison the output),
//! both pinned by regression tests.
//!
//! Kernels operate on a *row range* of the output so that
//! `dcn_tensor::par` can hand disjoint row chunks to worker threads; the
//! naive references share the signature so tests and benches can drive
//! either interchangeably.

use crate::{par, scratch};

/// Register-tile height: output rows accumulated simultaneously.
pub const MR: usize = 4;
/// Register-tile width: output columns accumulated simultaneously.
///
/// 16 columns give each of the MR rows two 8-lane AVX2 accumulators —
/// eight independent add chains, enough to hide `vaddps` latency (one
/// chain per row leaves the FP add ports half idle).
pub const NR: usize = 16;

/// Minimum flops a worker should receive before a GEMM opens a parallel
/// region; below this, thread start-up dominates the tile work.
const PAR_MIN_FLOPS: usize = 32_768;

// The full-tile fast paths below are hand-unrolled over exactly MR rows.
const _: () = assert!(MR == 4, "full-tile unrolls assume MR == 4");

// ---------------------------------------------------------------------------
// Multiply-accumulate policy
// ---------------------------------------------------------------------------

/// Per-step multiply-accumulate policy the tile cores are generic over.
///
/// [`Exact`] is the default, bitwise-pinned path; [`Fused`] is the
/// `DCN_FMA=1` opt-in. Both are deterministic — they differ only in how
/// many roundings one `acc ⊕ x·y` step performs.
trait Madd {
    /// `acc ⊕ x·y` under the policy's rounding.
    fn madd(acc: f32, x: f32, y: f32) -> f32;
}

/// Two roundings per step (`acc + x * y`) — the historic bit-exact path.
struct Exact;

impl Madd for Exact {
    #[inline(always)]
    fn madd(acc: f32, x: f32, y: f32) -> f32 {
        acc + x * y
    }
}

/// Single rounding per step (`x.mul_add(y, acc)`) — the FMA opt-in.
/// `f32::mul_add` has exact fused semantics even without hardware FMA
/// (libm software fallback), so results are machine-independent.
struct Fused;

impl Madd for Fused {
    #[inline(always)]
    fn madd(acc: f32, x: f32, y: f32) -> f32 {
        x.mul_add(y, acc)
    }
}

// ---------------------------------------------------------------------------
// Output pointer and tile store
// ---------------------------------------------------------------------------

/// Base pointer of the full output matrix, shared across grid workers.
///
/// A raw pointer rather than `&mut [f32]` because the 2-D grid partitions
/// the output into (row-range × column-range) rectangles: two workers'
/// rectangles interleave within rows, so no slice split can hand each
/// worker a contiguous exclusive region.
#[derive(Clone, Copy)]
struct OutPtr(*mut f32);

// SAFETY: `OutPtr` only carries the base address across the scoped-thread
// boundary. The parallel drivers guarantee that workers write disjoint
// element sets (tile-aligned row spans × block-aligned column spans from
// `par::partition_units` never overlap) and never read the buffer, and the
// exclusive `&mut` borrow of the underlying slice is held by the driver for
// the whole scoped region, so the shared address cannot alias any other
// live access.
unsafe impl Send for OutPtr {}
// SAFETY: as for `Send` — workers only write provably disjoint elements.
unsafe impl Sync for OutPtr {}

/// Writes an accumulator tile into the output at tile origin `(r0, j0)`.
///
/// Each k-loop arm owns its own `acc` and calls this, instead of sharing
/// one `acc` across arms — sharing makes LLVM keep the accumulators on the
/// stack (load-add-store per k step) rather than in vector registers.
///
/// # Safety
///
/// `out` must be valid for writes at offsets `(r0 + r)·n + j0 + c` for all
/// `r < mc`, `c < nc`, and no other thread may access those elements
/// during the call.
// SAFETY: the `unsafe fn` exists to forward the `out` write contract; see
// the `# Safety` section.
#[inline(always)]
unsafe fn store_tile(
    out: OutPtr,
    acc: &[[f32; NR]; MR],
    mc: usize,
    nc: usize,
    r0: usize,
    j0: usize,
    n: usize,
) {
    for (r, accr) in acc.iter().enumerate().take(mc) {
        // SAFETY: the destination span `(r0 + r)·n + j0 ..+ nc` is in
        // bounds and exclusively owned by this caller per the function
        // contract; `accr` is a distinct stack array (`nc <= NR`), so
        // source and destination cannot overlap.
        unsafe { std::ptr::copy_nonoverlapping(accr.as_ptr(), out.0.add((r0 + r) * n + j0), nc) };
    }
}

// ---------------------------------------------------------------------------
// Panel packing
// ---------------------------------------------------------------------------

/// Packs `B`'s (`[k, n]`) column blocks starting at block `jb_lo` into
/// contiguous `[k, NR]` panels, as many as `packed` holds. Remainder
/// columns stay zero from the scratch pool's zero-fill; bits are copied
/// verbatim, so packed and unpacked reads are interchangeable.
fn pack_b(b: &[f32], packed: &mut [f32], jb_lo: usize, k: usize, n: usize) {
    for (pb, block) in packed.chunks_exact_mut(k * NR).enumerate() {
        let j0 = (jb_lo + pb) * NR;
        let nc = NR.min(n - j0);
        for kk in 0..k {
            block[kk * NR..kk * NR + nc].copy_from_slice(&b[kk * n + j0..kk * n + j0 + nc]);
        }
    }
}

/// Packs `Bᵀ`'s (`B: [n, k]`) column blocks starting at block `jb_lo` into
/// `[k, NR]` panels — the transposing twin of [`pack_b`] for the nt kernel.
fn pack_bt(b: &[f32], packed: &mut [f32], jb_lo: usize, k: usize, n: usize) {
    for (pb, block) in packed.chunks_exact_mut(k * NR).enumerate() {
        let j0 = (jb_lo + pb) * NR;
        let nc = NR.min(n - j0);
        for (c, col) in (j0..j0 + nc).enumerate() {
            for kk in 0..k {
                block[kk * NR + c] = b[col * k + kk];
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tile cores (generic over the Madd policy)
// ---------------------------------------------------------------------------

/// One worker's share of an NN product: output rows `r_lo..r_hi`
/// (chunk-relative; A rows at `i0 + r`) × the packed panels for column
/// blocks `jb_lo..jb_lo + packed.len() / (k·NR)`.
///
/// # Safety
///
/// `out` must satisfy [`store_tile`]'s contract for every tile in the
/// row × block range — i.e. be valid for exclusive writes at `r·n + j` for
/// all `r ∈ r_lo..r_hi`, `j ∈ jb_lo·NR..min(jb_lo·NR + panels·NR, n)`.
// SAFETY: `unsafe fn` to forward `store_tile`'s `out` write contract over
// the worker's row × block range; see the `# Safety` section.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn nn_tiles<M: Madd>(
    a: &[f32],
    packed: &[f32],
    out: OutPtr,
    i0: usize,
    r_lo: usize,
    r_hi: usize,
    jb_lo: usize,
    k: usize,
    n: usize,
) {
    for r0 in (r_lo..r_hi).step_by(MR) {
        let mc = MR.min(r_hi - r0);
        let base = (i0 + r0) * k;
        // Zero-skip hoisted out of the hot loop: one O(MR·k) scan per row
        // tile (once per tile, not once per j block) decides whether any
        // lane would skip. Dense tiles — weight matrices, pre-ReLU data,
        // the common case — then run a completely branch-free k loop; when
        // nothing skips, both loops perform the identical per-element
        // operation sequence, so results stay bitwise equal either way.
        let dense = mc == MR && a[base..base + MR * k].iter().all(|&v| v != 0.0);
        for (pb, panel) in packed.chunks_exact(k * NR).enumerate() {
            let j0 = (jb_lo + pb) * NR;
            let nc = NR.min(n - j0);
            if mc == MR && nc == NR {
                // Full tile: A's four rows are pre-sliced and the row loop
                // hand-unrolled, so the whole MR×NR accumulator block lives
                // in vector registers across the k loop with one panel-row
                // load and four broadcast-multiply-adds per k step.
                let a0 = &a[base..base + k];
                let a1 = &a[base + k..base + 2 * k];
                let a2 = &a[base + 2 * k..base + 3 * k];
                let a3 = &a[base + 3 * k..base + 4 * k];
                let lanes = a0.iter().zip(a1).zip(a2).zip(a3);
                if dense {
                    let mut acc = [[0.0f32; NR]; MR];
                    for ((((&v0, &v1), &v2), &v3), prow) in lanes.zip(panel.chunks_exact(NR)) {
                        for c in 0..NR {
                            let p = prow[c];
                            acc[0][c] = M::madd(acc[0][c], v0, p);
                            acc[1][c] = M::madd(acc[1][c], v1, p);
                            acc[2][c] = M::madd(acc[2][c], v2, p);
                            acc[3][c] = M::madd(acc[3][c], v3, p);
                        }
                    }
                    // SAFETY: forwarded from this function's contract; the
                    // tile at (r0, j0) lies inside the caller's span.
                    unsafe { store_tile(out, &acc, MR, NR, r0, j0, n) };
                } else {
                    // `!= 0.0` is the historic zero-skip inverted: NaN
                    // compares unequal, so NaN lanes still multiply
                    // through, and exact zeros contribute nothing.
                    let mut acc = [[0.0f32; NR]; MR];
                    for ((((&v0, &v1), &v2), &v3), prow) in lanes.zip(panel.chunks_exact(NR)) {
                        if v0 != 0.0 {
                            for c in 0..NR {
                                acc[0][c] = M::madd(acc[0][c], v0, prow[c]);
                            }
                        }
                        if v1 != 0.0 {
                            for c in 0..NR {
                                acc[1][c] = M::madd(acc[1][c], v1, prow[c]);
                            }
                        }
                        if v2 != 0.0 {
                            for c in 0..NR {
                                acc[2][c] = M::madd(acc[2][c], v2, prow[c]);
                            }
                        }
                        if v3 != 0.0 {
                            for c in 0..NR {
                                acc[3][c] = M::madd(acc[3][c], v3, prow[c]);
                            }
                        }
                    }
                    // SAFETY: forwarded from this function's contract.
                    unsafe { store_tile(out, &acc, MR, NR, r0, j0, n) };
                }
            } else {
                let mut acc = [[0.0f32; NR]; MR];
                for kk in 0..k {
                    let prow = &panel[kk * NR..kk * NR + NR];
                    for (r, accr) in acc.iter_mut().enumerate().take(mc) {
                        let aik = a[(i0 + r0 + r) * k + kk];
                        if aik == 0.0 {
                            continue;
                        }
                        for c in 0..nc {
                            accr[c] = M::madd(accr[c], aik, prow[c]);
                        }
                    }
                }
                // SAFETY: forwarded from this function's contract.
                unsafe { store_tile(out, &acc, mc, nc, r0, j0, n) };
            }
        }
    }
}

/// One worker's share of a TN product (`A: [k, m]`, read as `Aᵀ`): output
/// rows `r_lo..r_hi` (A columns at `i0 + r`) × the packed panels for
/// column blocks `jb_lo..`.
///
/// # Safety
///
/// As [`nn_tiles`]: `out` must be valid for exclusive writes over the
/// row × block range.
// SAFETY: `unsafe fn` to forward `store_tile`'s `out` write contract over
// the worker's row × block range; see the `# Safety` section.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn tn_tiles<M: Madd>(
    a: &[f32],
    packed: &[f32],
    out: OutPtr,
    i0: usize,
    r_lo: usize,
    r_hi: usize,
    jb_lo: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    // A strip: the row tile's elements repacked [k, MR], turning the
    // stride-m loads of Aᵀ's tile columns into unit-stride streams, paid
    // once per row tile instead of once per (row tile, column block) pair.
    // Bits are copied verbatim, so packed reads match strided ones.
    let mut atile = scratch::take(k * MR);
    for r0 in (r_lo..r_hi).step_by(MR) {
        let mc = MR.min(r_hi - r0);
        let c0 = i0 + r0;
        for kk in 0..k {
            atile[kk * MR..kk * MR + mc].copy_from_slice(&a[kk * m + c0..kk * m + c0 + mc]);
        }
        // Lanes `mc..MR` of a short tile hold stale values from the
        // previous tile; they are never read (the full-tile arms require
        // mc == MR and the remainder loop stops at mc).
        let dense = mc == MR && atile.iter().all(|&v| v != 0.0);
        for (pb, panel) in packed.chunks_exact(k * NR).enumerate() {
            let j0 = (jb_lo + pb) * NR;
            let nc = NR.min(n - j0);
            if mc == MR && nc == NR {
                if dense {
                    let mut acc = [[0.0f32; NR]; MR];
                    for (kk, prow) in panel.chunks_exact(NR).enumerate() {
                        let av = &atile[kk * MR..kk * MR + MR];
                        let (v0, v1, v2, v3) = (av[0], av[1], av[2], av[3]);
                        for c in 0..NR {
                            let p = prow[c];
                            acc[0][c] = M::madd(acc[0][c], v0, p);
                            acc[1][c] = M::madd(acc[1][c], v1, p);
                            acc[2][c] = M::madd(acc[2][c], v2, p);
                            acc[3][c] = M::madd(acc[3][c], v3, p);
                        }
                    }
                    // SAFETY: forwarded from this function's contract.
                    unsafe { store_tile(out, &acc, MR, NR, r0, j0, n) };
                } else {
                    let mut acc = [[0.0f32; NR]; MR];
                    for (kk, prow) in panel.chunks_exact(NR).enumerate() {
                        let av = &atile[kk * MR..kk * MR + MR];
                        let (v0, v1, v2, v3) = (av[0], av[1], av[2], av[3]);
                        if v0 != 0.0 {
                            for c in 0..NR {
                                acc[0][c] = M::madd(acc[0][c], v0, prow[c]);
                            }
                        }
                        if v1 != 0.0 {
                            for c in 0..NR {
                                acc[1][c] = M::madd(acc[1][c], v1, prow[c]);
                            }
                        }
                        if v2 != 0.0 {
                            for c in 0..NR {
                                acc[2][c] = M::madd(acc[2][c], v2, prow[c]);
                            }
                        }
                        if v3 != 0.0 {
                            for c in 0..NR {
                                acc[3][c] = M::madd(acc[3][c], v3, prow[c]);
                            }
                        }
                    }
                    // SAFETY: forwarded from this function's contract.
                    unsafe { store_tile(out, &acc, MR, NR, r0, j0, n) };
                }
            } else {
                let mut acc = [[0.0f32; NR]; MR];
                for kk in 0..k {
                    let prow = &panel[kk * NR..kk * NR + NR];
                    let arow = &atile[kk * MR..kk * MR + mc];
                    for (r, accr) in acc.iter_mut().enumerate().take(mc) {
                        let aki = arow[r];
                        if aki == 0.0 {
                            continue;
                        }
                        for c in 0..nc {
                            accr[c] = M::madd(accr[c], aki, prow[c]);
                        }
                    }
                }
                // SAFETY: forwarded from this function's contract.
                unsafe { store_tile(out, &acc, mc, nc, r0, j0, n) };
            }
        }
    }
    scratch::recycle(atile);
}

/// One worker's share of an NT product (`A: [m, k]`, `B: [n, k]` packed
/// transposed): output rows `r_lo..r_hi` (A rows at `i0 + r`) × the packed
/// panels for column blocks `jb_lo..`. No zero-skip — every element is a
/// plain ascending-`k` dot product.
///
/// # Safety
///
/// As [`nn_tiles`]: `out` must be valid for exclusive writes over the
/// row × block range.
// SAFETY: `unsafe fn` to forward `store_tile`'s `out` write contract over
// the worker's row × block range; see the `# Safety` section.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn nt_tiles<M: Madd>(
    a: &[f32],
    packed: &[f32],
    out: OutPtr,
    i0: usize,
    r_lo: usize,
    r_hi: usize,
    jb_lo: usize,
    k: usize,
    n: usize,
) {
    // A strip [k, MR]: each k step then loads the tile's four A values as
    // one contiguous 4-wide slice instead of four scalars k elements apart
    // (which alias the same cache sets for power-of-two k).
    let mut atile = scratch::take(k * MR);
    for r0 in (r_lo..r_hi).step_by(MR) {
        let mc = MR.min(r_hi - r0);
        for r in 0..mc {
            let arow = &a[(i0 + r0 + r) * k..(i0 + r0 + r) * k + k];
            for (kk, &v) in arow.iter().enumerate() {
                atile[kk * MR + r] = v;
            }
        }
        for (pb, panel) in packed.chunks_exact(k * NR).enumerate() {
            let j0 = (jb_lo + pb) * NR;
            let nc = NR.min(n - j0);
            if mc == MR && nc == NR {
                let mut acc = [[0.0f32; NR]; MR];
                for (kk, prow) in panel.chunks_exact(NR).enumerate() {
                    let av = &atile[kk * MR..kk * MR + MR];
                    let (v0, v1, v2, v3) = (av[0], av[1], av[2], av[3]);
                    for c in 0..NR {
                        let p = prow[c];
                        acc[0][c] = M::madd(acc[0][c], v0, p);
                        acc[1][c] = M::madd(acc[1][c], v1, p);
                        acc[2][c] = M::madd(acc[2][c], v2, p);
                        acc[3][c] = M::madd(acc[3][c], v3, p);
                    }
                }
                // SAFETY: forwarded from this function's contract.
                unsafe { store_tile(out, &acc, MR, NR, r0, j0, n) };
            } else {
                let mut acc = [[0.0f32; NR]; MR];
                for kk in 0..k {
                    let prow = &panel[kk * NR..kk * NR + NR];
                    let arow = &atile[kk * MR..kk * MR + mc];
                    for (r, accr) in acc.iter_mut().enumerate().take(mc) {
                        let aik = arow[r];
                        for c in 0..nc {
                            accr[c] = M::madd(accr[c], aik, prow[c]);
                        }
                    }
                }
                // SAFETY: forwarded from this function's contract.
                unsafe { store_tile(out, &acc, mc, nc, r0, j0, n) };
            }
        }
    }
    scratch::recycle(atile);
}

// ---------------------------------------------------------------------------
// ISA dispatch
// ---------------------------------------------------------------------------

/// Instruction-set / rounding variant, resolved once per kernel invocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Isa {
    /// Portable scalar build, two roundings per step (bit-exact default).
    Scalar,
    /// AVX2 autovectorization, two roundings per step (bit-exact default —
    /// the `fma` feature is deliberately NOT enabled here).
    Avx2,
    /// Portable fused path (`f32::mul_add` through libm when the CPU lacks
    /// FMA) — slow, but bitwise-identical to [`Isa::Avx2Fma`].
    ScalarFused,
    /// AVX2 + hardware FMA, single rounding per step (the opt-in).
    Avx2Fma,
}

/// Resolves the active variant from the global [`par::ParConfig`] and the
/// CPU's runtime feature set. The fused variants are reached only through
/// the explicit `DCN_FMA=1` / [`par::ParConfig::fma`] opt-in.
fn active_isa() -> Isa {
    let fused = par::ParConfig::current().fma;
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            if fused && std::arch::is_x86_feature_detected!("fma") {
                return Isa::Avx2Fma;
            }
            if !fused {
                return Isa::Avx2;
            }
        }
    }
    if fused {
        Isa::ScalarFused
    } else {
        Isa::Scalar
    }
}

// SAFETY: `unsafe fn` because of `#[target_feature]` plus the forwarded
// `out` contract; the body is otherwise safe code. Callers must verify
// AVX2 at runtime before calling.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn nn_tiles_avx2(
    a: &[f32],
    packed: &[f32],
    out: OutPtr,
    i0: usize,
    r_lo: usize,
    r_hi: usize,
    jb_lo: usize,
    k: usize,
    n: usize,
) {
    // SAFETY: the `out` contract is forwarded verbatim from this wrapper.
    unsafe { nn_tiles::<Exact>(a, packed, out, i0, r_lo, r_hi, jb_lo, k, n) };
}

// SAFETY: `unsafe fn` because of `#[target_feature]` plus the forwarded
// `out` contract; the body is otherwise safe code. Callers must verify
// AVX2 **and FMA** at runtime before calling; `mul_add` then compiles to
// `vfmadd` (single rounding — the tolerance-tested opt-in path).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn nn_tiles_avx2fma(
    a: &[f32],
    packed: &[f32],
    out: OutPtr,
    i0: usize,
    r_lo: usize,
    r_hi: usize,
    jb_lo: usize,
    k: usize,
    n: usize,
) {
    // SAFETY: the `out` contract is forwarded verbatim from this wrapper.
    unsafe { nn_tiles::<Fused>(a, packed, out, i0, r_lo, r_hi, jb_lo, k, n) };
}

// SAFETY: `unsafe fn` because of `#[target_feature]` plus the forwarded
// `out` contract; the body is otherwise safe code. Callers must verify
// AVX2 at runtime before calling.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn tn_tiles_avx2(
    a: &[f32],
    packed: &[f32],
    out: OutPtr,
    i0: usize,
    r_lo: usize,
    r_hi: usize,
    jb_lo: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    // SAFETY: the `out` contract is forwarded verbatim from this wrapper.
    unsafe { tn_tiles::<Exact>(a, packed, out, i0, r_lo, r_hi, jb_lo, m, k, n) };
}

// SAFETY: `unsafe fn` because of `#[target_feature]` plus the forwarded
// `out` contract; the body is otherwise safe code. Callers must verify
// AVX2 **and FMA** at runtime before calling.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn tn_tiles_avx2fma(
    a: &[f32],
    packed: &[f32],
    out: OutPtr,
    i0: usize,
    r_lo: usize,
    r_hi: usize,
    jb_lo: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    // SAFETY: the `out` contract is forwarded verbatim from this wrapper.
    unsafe { tn_tiles::<Fused>(a, packed, out, i0, r_lo, r_hi, jb_lo, m, k, n) };
}

// SAFETY: `unsafe fn` because of `#[target_feature]` plus the forwarded
// `out` contract; the body is otherwise safe code. Callers must verify
// AVX2 at runtime before calling.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn nt_tiles_avx2(
    a: &[f32],
    packed: &[f32],
    out: OutPtr,
    i0: usize,
    r_lo: usize,
    r_hi: usize,
    jb_lo: usize,
    k: usize,
    n: usize,
) {
    // SAFETY: the `out` contract is forwarded verbatim from this wrapper.
    unsafe { nt_tiles::<Exact>(a, packed, out, i0, r_lo, r_hi, jb_lo, k, n) };
}

// SAFETY: `unsafe fn` because of `#[target_feature]` plus the forwarded
// `out` contract; the body is otherwise safe code. Callers must verify
// AVX2 **and FMA** at runtime before calling.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn nt_tiles_avx2fma(
    a: &[f32],
    packed: &[f32],
    out: OutPtr,
    i0: usize,
    r_lo: usize,
    r_hi: usize,
    jb_lo: usize,
    k: usize,
    n: usize,
) {
    // SAFETY: the `out` contract is forwarded verbatim from this wrapper.
    unsafe { nt_tiles::<Fused>(a, packed, out, i0, r_lo, r_hi, jb_lo, k, n) };
}

/// Runs one worker's NN share on the resolved variant.
///
/// # Safety
///
/// As [`nn_tiles`]; additionally `isa` must come from [`active_isa`] so it
/// never names a feature the CPU lacks.
// SAFETY: `unsafe fn` to forward the tile cores' `out` write contract and
// the `isa`-from-`active_isa` feature requirement; see the `# Safety` section.
#[allow(clippy::too_many_arguments)]
unsafe fn run_nn(
    isa: Isa,
    a: &[f32],
    packed: &[f32],
    out: OutPtr,
    i0: usize,
    r_lo: usize,
    r_hi: usize,
    jb_lo: usize,
    k: usize,
    n: usize,
) {
    match isa {
        // SAFETY: `active_isa` verified AVX2 at runtime; the `out`
        // contract is forwarded verbatim.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { nn_tiles_avx2(a, packed, out, i0, r_lo, r_hi, jb_lo, k, n) },
        // SAFETY: `active_isa` verified AVX2 + FMA at runtime; the `out`
        // contract is forwarded verbatim.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { nn_tiles_avx2fma(a, packed, out, i0, r_lo, r_hi, jb_lo, k, n) },
        // SAFETY: portable code; the `out` contract is forwarded verbatim.
        Isa::ScalarFused => unsafe { nn_tiles::<Fused>(a, packed, out, i0, r_lo, r_hi, jb_lo, k, n) },
        // SAFETY: portable code; the `out` contract is forwarded verbatim.
        _ => unsafe { nn_tiles::<Exact>(a, packed, out, i0, r_lo, r_hi, jb_lo, k, n) },
    }
}

/// Runs one worker's TN share on the resolved variant.
///
/// # Safety
///
/// As [`tn_tiles`]; `isa` must come from [`active_isa`].
// SAFETY: `unsafe fn` to forward the tile cores' `out` write contract and
// the `isa`-from-`active_isa` feature requirement; see the `# Safety` section.
#[allow(clippy::too_many_arguments)]
unsafe fn run_tn(
    isa: Isa,
    a: &[f32],
    packed: &[f32],
    out: OutPtr,
    i0: usize,
    r_lo: usize,
    r_hi: usize,
    jb_lo: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    match isa {
        // SAFETY: `active_isa` verified AVX2 at runtime; the `out`
        // contract is forwarded verbatim.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { tn_tiles_avx2(a, packed, out, i0, r_lo, r_hi, jb_lo, m, k, n) },
        // SAFETY: `active_isa` verified AVX2 + FMA at runtime; the `out`
        // contract is forwarded verbatim.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { tn_tiles_avx2fma(a, packed, out, i0, r_lo, r_hi, jb_lo, m, k, n) },
        // SAFETY: portable code; the `out` contract is forwarded verbatim.
        Isa::ScalarFused => unsafe { tn_tiles::<Fused>(a, packed, out, i0, r_lo, r_hi, jb_lo, m, k, n) },
        // SAFETY: portable code; the `out` contract is forwarded verbatim.
        _ => unsafe { tn_tiles::<Exact>(a, packed, out, i0, r_lo, r_hi, jb_lo, m, k, n) },
    }
}

/// Runs one worker's NT share on the resolved variant.
///
/// # Safety
///
/// As [`nt_tiles`]; `isa` must come from [`active_isa`].
// SAFETY: `unsafe fn` to forward the tile cores' `out` write contract and
// the `isa`-from-`active_isa` feature requirement; see the `# Safety` section.
#[allow(clippy::too_many_arguments)]
unsafe fn run_nt(
    isa: Isa,
    a: &[f32],
    packed: &[f32],
    out: OutPtr,
    i0: usize,
    r_lo: usize,
    r_hi: usize,
    jb_lo: usize,
    k: usize,
    n: usize,
) {
    match isa {
        // SAFETY: `active_isa` verified AVX2 at runtime; the `out`
        // contract is forwarded verbatim.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { nt_tiles_avx2(a, packed, out, i0, r_lo, r_hi, jb_lo, k, n) },
        // SAFETY: `active_isa` verified AVX2 + FMA at runtime; the `out`
        // contract is forwarded verbatim.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { nt_tiles_avx2fma(a, packed, out, i0, r_lo, r_hi, jb_lo, k, n) },
        // SAFETY: portable code; the `out` contract is forwarded verbatim.
        Isa::ScalarFused => unsafe { nt_tiles::<Fused>(a, packed, out, i0, r_lo, r_hi, jb_lo, k, n) },
        // SAFETY: portable code; the `out` contract is forwarded verbatim.
        _ => unsafe { nt_tiles::<Exact>(a, packed, out, i0, r_lo, r_hi, jb_lo, k, n) },
    }
}

// ---------------------------------------------------------------------------
// Serial row-range kernels (the historic public API)
// ---------------------------------------------------------------------------

/// Tiled `C[i0..i0+rows, :] = A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// `out` is the chunk covering exactly `rows` output rows starting at
/// absolute row `i0`; it is fully overwritten (no pre-zeroing required).
/// Runs on the calling thread; [`par_gemm_nn`] is the grid-parallel driver.
pub fn gemm_nn(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, rows: usize, k: usize, n: usize) {
    if rows == 0 || n == 0 {
        return;
    }
    assert!(out.len() >= rows * n, "gemm_nn: out holds {} elements, need {}", out.len(), rows * n);
    if k == 0 {
        // Empty reduction: every element is an empty sum, exactly as the
        // naive kernels leave a zero-filled `out` untouched.
        out[..rows * n].fill(0.0);
        return;
    }
    let nblocks = n.div_ceil(NR);
    let mut packed = scratch::take(nblocks * k * NR);
    pack_b(b, &mut packed, 0, k, n);
    let dst = OutPtr(out.as_mut_ptr());
    // SAFETY: `dst` spans the exclusively borrowed `out` (≥ rows·n
    // elements, asserted above), the call is single-threaded, and the
    // row/block range covers exactly rows 0..rows × all blocks.
    // `active_isa` checks CPU features at runtime.
    unsafe { run_nn(active_isa(), a, &packed, dst, i0, 0, rows, 0, k, n) };
    scratch::recycle(packed);
}

/// Tiled `C[i0..i0+rows, :] = Aᵀ · B` for `A: [k, m]`, `B: [k, n]`.
///
/// `m` is the full height of the output (`A`'s column count); `out` covers
/// `rows` rows starting at absolute row `i0` and is fully overwritten.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    if rows == 0 || n == 0 {
        return;
    }
    assert!(out.len() >= rows * n, "gemm_tn: out holds {} elements, need {}", out.len(), rows * n);
    if k == 0 {
        // Empty reduction, as in `gemm_nn`.
        out[..rows * n].fill(0.0);
        return;
    }
    let nblocks = n.div_ceil(NR);
    let mut packed = scratch::take(nblocks * k * NR);
    pack_b(b, &mut packed, 0, k, n);
    let dst = OutPtr(out.as_mut_ptr());
    // SAFETY: as in `gemm_nn` — exclusive single-threaded span over the
    // whole chunk; features checked by `active_isa`.
    unsafe { run_tn(active_isa(), a, &packed, dst, i0, 0, rows, 0, m, k, n) };
    scratch::recycle(packed);
}

/// Tiled `C[i0..i0+rows, :] = A · Bᵀ` for `A: [m, k]`, `B: [n, k]`.
///
/// No zero-skip: every element is a plain ascending-`k` dot product, as in
/// the naive kernel. `out` covers `rows` rows starting at absolute row `i0`
/// and is fully overwritten.
pub fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, rows: usize, k: usize, n: usize) {
    if rows == 0 || n == 0 {
        return;
    }
    assert!(out.len() >= rows * n, "gemm_nt: out holds {} elements, need {}", out.len(), rows * n);
    if k == 0 {
        // Empty reduction, as in `gemm_nn`.
        out[..rows * n].fill(0.0);
        return;
    }
    let nblocks = n.div_ceil(NR);
    let mut packed = scratch::take(nblocks * k * NR);
    pack_bt(b, &mut packed, 0, k, n);
    let dst = OutPtr(out.as_mut_ptr());
    // SAFETY: as in `gemm_nn` — exclusive single-threaded span over the
    // whole chunk; features checked by `active_isa`.
    unsafe { run_nt(active_isa(), a, &packed, dst, i0, 0, rows, 0, k, n) };
    scratch::recycle(packed);
}

// ---------------------------------------------------------------------------
// Grid-parallel drivers
// ---------------------------------------------------------------------------

/// Worker budget for an `mt × nb`-tile GEMM with reduction depth `k`,
/// honoring the global configuration, the nested-region guard and the
/// flop floor.
fn plan_workers(mt: usize, nb: usize, k: usize) -> usize {
    let tile_flops = 2 * MR * NR * k.max(1);
    let min_tiles = PAR_MIN_FLOPS.div_ceil(tile_flops).max(1);
    par::planned_workers(mt * nb, min_tiles)
}

/// Splits `workers` into a `wr × wc` grid over `mt` row tiles and `nb`
/// column blocks.
///
/// Maximizes thread utilization (`wr · wc`), then minimizes duplicated
/// stream traffic: a worker re-reads its row range of `A` once per column
/// group and its column group of `B` is re-packed once per row group, so
/// the duplicated traffic is ∝ `wc·m + wr·n`. Row-dominant products (the
/// vote batch) come out row-split; wide products (a batch-1 forward, an
/// im2col patch product) come out column-split, which is what lets a
/// single-row GEMM still use every worker.
fn plan_grid(workers: usize, mt: usize, nb: usize, m: usize, n: usize) -> (usize, usize) {
    let mut best = (1, 1);
    let mut best_cover = 0;
    let mut best_cost = usize::MAX;
    for wc in 1..=workers.min(nb) {
        let wr = (workers / wc).min(mt);
        let cover = wr * wc;
        let cost = wc * m + wr * n;
        if cover > best_cover || (cover == best_cover && cost < best_cost) {
            best = (wr, wc);
            best_cover = cover;
            best_cost = cost;
        }
    }
    best
}

/// `C = A · B` over the whole output (`A: [m, k]`, `B: [k, n]`), with the
/// row-tile and column-block loops split across a worker grid. Each worker
/// packs only its own `B` panels into its thread-local scratch pool.
///
/// Per output element the computation is identical to [`gemm_nn`] — the
/// grid only changes *which thread* computes a tile, never the within-tile
/// `k`-order — so the result is **bitwise identical** to the serial kernel
/// for any thread count (pinned by `tests/gemm_parallel.rs`).
pub fn par_gemm_nn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(out.len(), m * n, "par_gemm_nn: out length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let mt = m.div_ceil(MR);
    let nb = n.div_ceil(NR);
    let (wr, wc) = plan_grid(plan_workers(mt, nb, k), mt, nb, m, n);
    if wr * wc <= 1 {
        gemm_nn(a, b, out, 0, m, k, n);
        return;
    }
    let row_spans = par::partition_units(mt, wr);
    let col_spans = par::partition_units(nb, wc);
    let isa = active_isa();
    let dst = OutPtr(out.as_mut_ptr());
    par::run_workers(wr * wc, mt * nb, |w| {
        let (t0, tl) = row_spans[w / wc];
        let (jb0, jbl) = col_spans[w % wc];
        if tl == 0 || jbl == 0 {
            return;
        }
        let r_lo = t0 * MR;
        let r_hi = (r_lo + tl * MR).min(m);
        let mut packed = scratch::take(jbl * k * NR);
        pack_b(b, &mut packed, jb0, k, n);
        // SAFETY: `dst` spans the exclusively borrowed `out` (exactly m·n
        // elements, asserted above), which outlives the scoped workers.
        // Workers write disjoint regions: `partition_units` yields
        // non-overlapping tile-aligned row spans and block-aligned column
        // spans, and each (row, column) element belongs to exactly one
        // (row-span × column-span) grid cell. `active_isa` checked CPU
        // features at runtime.
        unsafe { run_nn(isa, a, &packed, dst, 0, r_lo, r_hi, jb0, k, n) };
        scratch::recycle(packed);
    });
}

/// `C = Aᵀ · B` over the whole output (`A: [k, m]`, `B: [k, n]`) — the
/// grid-parallel twin of [`gemm_tn`]; bitwise identical to it for any
/// thread count.
pub fn par_gemm_tn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(out.len(), m * n, "par_gemm_tn: out length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let mt = m.div_ceil(MR);
    let nb = n.div_ceil(NR);
    let (wr, wc) = plan_grid(plan_workers(mt, nb, k), mt, nb, m, n);
    if wr * wc <= 1 {
        gemm_tn(a, b, out, 0, m, m, k, n);
        return;
    }
    let row_spans = par::partition_units(mt, wr);
    let col_spans = par::partition_units(nb, wc);
    let isa = active_isa();
    let dst = OutPtr(out.as_mut_ptr());
    par::run_workers(wr * wc, mt * nb, |w| {
        let (t0, tl) = row_spans[w / wc];
        let (jb0, jbl) = col_spans[w % wc];
        if tl == 0 || jbl == 0 {
            return;
        }
        let r_lo = t0 * MR;
        let r_hi = (r_lo + tl * MR).min(m);
        let mut packed = scratch::take(jbl * k * NR);
        pack_b(b, &mut packed, jb0, k, n);
        // SAFETY: as in `par_gemm_nn` — disjoint tile-aligned spans over
        // the exclusively borrowed `out`, features checked at runtime.
        unsafe { run_tn(isa, a, &packed, dst, 0, r_lo, r_hi, jb0, m, k, n) };
        scratch::recycle(packed);
    });
}

/// `C = A · Bᵀ` over the whole output (`A: [m, k]`, `B: [n, k]`) — the
/// grid-parallel twin of [`gemm_nt`]; bitwise identical to it for any
/// thread count.
pub fn par_gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(out.len(), m * n, "par_gemm_nt: out length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let mt = m.div_ceil(MR);
    let nb = n.div_ceil(NR);
    let (wr, wc) = plan_grid(plan_workers(mt, nb, k), mt, nb, m, n);
    if wr * wc <= 1 {
        gemm_nt(a, b, out, 0, m, k, n);
        return;
    }
    let row_spans = par::partition_units(mt, wr);
    let col_spans = par::partition_units(nb, wc);
    let isa = active_isa();
    let dst = OutPtr(out.as_mut_ptr());
    par::run_workers(wr * wc, mt * nb, |w| {
        let (t0, tl) = row_spans[w / wc];
        let (jb0, jbl) = col_spans[w % wc];
        if tl == 0 || jbl == 0 {
            return;
        }
        let r_lo = t0 * MR;
        let r_hi = (r_lo + tl * MR).min(m);
        let mut packed = scratch::take(jbl * k * NR);
        pack_bt(b, &mut packed, jb0, k, n);
        // SAFETY: as in `par_gemm_nn` — disjoint tile-aligned spans over
        // the exclusively borrowed `out`, features checked at runtime.
        unsafe { run_nt(isa, a, &packed, dst, 0, r_lo, r_hi, jb0, k, n) };
        scratch::recycle(packed);
    });
}

// ---------------------------------------------------------------------------
// Naive references (the seed kernels, retained verbatim)
// ---------------------------------------------------------------------------

/// The historic i-k-j `matmul` kernel, kept as the bitwise reference the
/// tiled [`gemm_nn`] must reproduce. `out` must be zero-filled on entry.
pub fn naive_nn(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, k: usize, n: usize) {
    for (r, orow) in out.chunks_mut(n).enumerate() {
        let i = i0 + r;
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                *o += aik * bkj;
            }
        }
    }
}

/// The historic `matmul_tn` kernel (bitwise reference for [`gemm_tn`]).
/// `out` must be zero-filled on entry.
pub fn naive_tn(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, m: usize, k: usize, n: usize) {
    for (r, orow) in out.chunks_mut(n).enumerate() {
        let i = i0 + r;
        for kk in 0..k {
            let aki = a[kk * m + i];
            if aki == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                *o += aki * bkj;
            }
        }
    }
}

/// The historic `matmul_nt` kernel (bitwise reference for [`gemm_nt`]).
pub fn naive_nt(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, k: usize, n: usize) {
    for (r, orow) in out.chunks_mut(n).enumerate() {
        let i = i0 + r;
        let arow = &a[i * k..(i + 1) * k];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32 - n as f32 / 2.0) * scale).collect()
    }

    fn assert_bits_eq(tiled: &[f32], naive: &[f32], what: &str) {
        assert_eq!(tiled.len(), naive.len(), "{what}: length drift");
        for (i, (t, r)) in tiled.iter().zip(naive).enumerate() {
            assert_eq!(t.to_bits(), r.to_bits(), "{what}: element {i} ({t} vs {r})");
        }
    }

    #[test]
    fn tiled_nn_matches_naive_across_remainders() {
        // Every MR/NR remainder combination, including sub-tile shapes.
        for m in [1, 3, MR, MR + 1, 2 * MR + 3] {
            for n in [1, NR - 1, NR, NR + 1, 2 * NR + 5] {
                for k in [0, 1, 7] {
                    let a = seq(m * k, 0.25);
                    let b = seq(k * n, 0.5);
                    let mut tiled = vec![0.0; m * n];
                    let mut naive = vec![0.0; m * n];
                    gemm_nn(&a, &b, &mut tiled, 0, m, k, n);
                    naive_nn(&a, &b, &mut naive, 0, k, n);
                    assert_bits_eq(&tiled, &naive, &format!("nn {m}x{k}x{n}"));
                }
            }
        }
    }

    #[test]
    fn tiled_tn_matches_naive_across_remainders() {
        for m in [1, MR, MR + 2] {
            for n in [1, NR, NR + 3] {
                for k in [1, 6] {
                    let a = seq(k * m, 0.25);
                    let b = seq(k * n, 0.5);
                    let mut tiled = vec![0.0; m * n];
                    let mut naive = vec![0.0; m * n];
                    gemm_tn(&a, &b, &mut tiled, 0, m, m, k, n);
                    naive_tn(&a, &b, &mut naive, 0, m, k, n);
                    assert_bits_eq(&tiled, &naive, &format!("tn {m}x{k}x{n}"));
                }
            }
        }
    }

    #[test]
    fn tiled_nt_matches_naive_across_remainders() {
        for m in [1, MR, MR + 2] {
            for n in [1, NR, NR + 3] {
                for k in [1, 6] {
                    let a = seq(m * k, 0.25);
                    let b = seq(n * k, 0.5);
                    let mut tiled = vec![0.0; m * n];
                    let mut naive = vec![0.0; m * n];
                    gemm_nt(&a, &b, &mut tiled, 0, m, k, n);
                    naive_nt(&a, &b, &mut naive, 0, k, n);
                    assert_bits_eq(&tiled, &naive, &format!("nt {m}x{k}x{n}"));
                }
            }
        }
    }

    #[test]
    fn row_chunks_compose_to_the_full_product() {
        // The par layer hands kernels disjoint row ranges; gluing two ranges
        // must equal one full-range call.
        let (m, k, n) = (7, 5, 11);
        let a = seq(m * k, 0.3);
        let b = seq(k * n, 0.7);
        let mut full = vec![0.0; m * n];
        gemm_nn(&a, &b, &mut full, 0, m, k, n);
        let mut split = vec![0.0; m * n];
        let (top, bottom) = split.split_at_mut(3 * n);
        gemm_nn(&a, &b, top, 0, 3, k, n);
        gemm_nn(&a, &b, bottom, 3, 4, k, n);
        assert_bits_eq(&split, &full, "row-chunk composition");
    }

    #[test]
    fn grid_planner_covers_and_respects_bounds() {
        for workers in 1..=9 {
            for mt in [1, 2, 7, 64] {
                for nb in [1, 2, 5, 16] {
                    let (wr, wc) = plan_grid(workers, mt, nb, mt * MR, nb * NR);
                    assert!(wr >= 1 && wc >= 1);
                    assert!(wr <= mt, "wr {wr} > mt {mt}");
                    assert!(wc <= nb, "wc {wc} > nb {nb}");
                    assert!(wr * wc <= workers.max(1));
                    // Full utilization whenever the tile grid allows it.
                    if mt * nb >= workers {
                        assert!(
                            wr * wc >= workers / 2,
                            "poor utilization: {wr}x{wc} of {workers} on {mt}x{nb}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_row_products_split_over_columns() {
        // A batch-1 forward (one row tile, many column blocks) must still
        // fan out over the column dimension.
        let (wr, wc) = plan_grid(4, 1, 32, 1, 512);
        assert_eq!(wr, 1);
        assert_eq!(wc, 4);
    }
}
