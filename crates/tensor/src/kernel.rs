//! Register-tiled GEMM micro-kernels behind [`crate::matmul`] and friends.
//!
//! # Tiling scheme
//!
//! Each kernel walks its output in `MR`×`NR` register tiles: an `MR`×`NR`
//! block of accumulators lives in registers for the whole `k` loop, and the
//! `NR`-wide slice of `B` needed at each `k` step is read from a packed,
//! contiguous *panel* (`[k, NR]`, repacked once per `NR`-column block and
//! reused by every row tile). The naive i-k-j kernels this replaces stream
//! a full `n`-length row of `C` through memory at every `k` step — `m·k`
//! passes over `C` in total; the tiled kernels touch each `C` element once,
//! which is what makes mid-sized GEMMs compute- rather than memory-bound.
//!
//! # Determinism
//!
//! Tiling is over `i`/`j` **only** — every output element still accumulates
//! its products in ascending-`k` order into a single `f32`, exactly the
//! per-element operation sequence of the naive kernels. Blocking over `k`
//! (splitting one element's reduction into partial sums) would change
//! float rounding and break the workspace's bitwise-determinism contract,
//! so it is deliberately not done: at these sizes the whole `k` extent of a
//! `B` panel (`k · NR · 4` bytes) fits in L1/L2 comfortably. Panel packing
//! copies bits verbatim. The result is that every tiled kernel is
//! **bitwise identical** to its naive reference — pinned by the property
//! tests in `tests/kernels.rs`.
//!
//! # Zero-skip semantics
//!
//! The historic `matmul`/`matmul_tn` kernels skip the whole `j` loop when
//! an `A` element is exactly `0.0` (`if aik == 0.0 { continue }`) — a win
//! on post-ReLU activations, and load-bearing for NaN propagation:
//! `0 · NaN` contributions are *dropped*, not turned into NaN. The tiled
//! kernels preserve this skip per `(row, k)` step, and `matmul_nt` remains
//! skip-free (a plain dot product that lets `0 · NaN` poison the output),
//! both pinned by regression tests.
//!
//! Kernels operate on a *row range* of the output so that
//! `dcn_tensor::par` can hand disjoint row chunks to worker threads; the
//! naive references share the signature so tests and benches can drive
//! either interchangeably.

use crate::scratch;

/// Register-tile height: output rows accumulated simultaneously.
pub const MR: usize = 4;
/// Register-tile width: output columns accumulated simultaneously.
///
/// 16 columns give each of the MR rows two 8-lane AVX2 accumulators —
/// eight independent add chains, enough to hide `vaddps` latency (one
/// chain per row leaves the FP add ports half idle).
pub const NR: usize = 16;

// ---------------------------------------------------------------------------
// Tiled kernels
// ---------------------------------------------------------------------------

// The full-tile fast paths below are hand-unrolled over exactly MR rows.
const _: () = assert!(MR == 4, "full-tile unrolls assume MR == 4");

/// Writes an accumulator tile into `out` at tile origin `(r0, j0)`.
///
/// Each k-loop arm owns its own `acc` and calls this, instead of sharing
/// one `acc` across arms — sharing makes LLVM keep the accumulators on the
/// stack (load-add-store per k step) rather than in vector registers.
#[inline(always)]
fn store_tile(
    out: &mut [f32],
    acc: &[[f32; NR]; MR],
    mc: usize,
    nc: usize,
    r0: usize,
    j0: usize,
    n: usize,
) {
    for (r, accr) in acc.iter().enumerate().take(mc) {
        let row = (r0 + r) * n + j0;
        out[row..row + nc].copy_from_slice(&accr[..nc]);
    }
}

/// Tiled `C[i0..i0+rows, :] = A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// `out` is the chunk covering exactly `rows` output rows starting at
/// absolute row `i0`; it is fully overwritten (no pre-zeroing required).
pub fn gemm_nn(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, rows: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 presence is verified at runtime. The kernel body
        // contains no intrinsics; the feature only widens LLVM's
        // autovectorization, which stays per-lane IEEE mul-then-add (the
        // `fma` feature is deliberately NOT enabled — fused contraction
        // would change rounding and break bitwise determinism).
        unsafe { gemm_nn_avx2(a, b, out, i0, rows, k, n) };
        return;
    }
    gemm_nn_impl(a, b, out, i0, rows, k, n);
}

// SAFETY: `unsafe fn` solely because of `#[target_feature]`; the body is
// safe code. Callers must verify AVX2 at runtime before calling.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nn_avx2(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, rows: usize, k: usize, n: usize) {
    gemm_nn_impl(a, b, out, i0, rows, k, n);
}

#[inline(always)]
fn gemm_nn_impl(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, rows: usize, k: usize, n: usize) {
    if rows == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // Empty reduction: every element is an empty sum, exactly as the
        // naive kernels leave a zero-filled `out` untouched.
        out[..rows * n].fill(0.0);
        return;
    }
    // Pack every NR-column block of B up front ([block][k, NR], remainder
    // block zero-padded by `take`'s zero-fill). Packing all blocks at once
    // lets the row loop run OUTERMOST, which is what makes the per-row-tile
    // zero scan below amortize to a single pass over A.
    let nblocks = n.div_ceil(NR);
    let mut packed = scratch::take(nblocks * k * NR);
    for (jb, block) in packed.chunks_exact_mut(k * NR).enumerate() {
        let j0 = jb * NR;
        let nc = NR.min(n - j0);
        for kk in 0..k {
            block[kk * NR..kk * NR + nc].copy_from_slice(&b[kk * n + j0..kk * n + j0 + nc]);
        }
    }
    for r0 in (0..rows).step_by(MR) {
        let mc = MR.min(rows - r0);
        let base = (i0 + r0) * k;
        // Zero-skip hoisted out of the hot loop: one O(MR·k) scan per row
        // tile (once per tile, not once per j block) decides whether any
        // lane would skip. Dense tiles — weight matrices, pre-ReLU data,
        // the common case — then run a completely branch-free k loop; when
        // nothing skips, both loops perform the identical per-element
        // operation sequence, so results stay bitwise equal either way.
        let dense = mc == MR && a[base..base + MR * k].iter().all(|&v| v != 0.0);
        for (jb, panel) in packed.chunks_exact(k * NR).enumerate() {
            let j0 = jb * NR;
            let nc = NR.min(n - j0);
            if mc == MR && nc == NR {
                // Full tile: A's four rows are pre-sliced and the row loop
                // hand-unrolled, so the whole MR×NR accumulator block lives
                // in vector registers across the k loop with one panel-row
                // load and four broadcast-multiply-adds per k step.
                let a0 = &a[base..base + k];
                let a1 = &a[base + k..base + 2 * k];
                let a2 = &a[base + 2 * k..base + 3 * k];
                let a3 = &a[base + 3 * k..base + 4 * k];
                let lanes = a0.iter().zip(a1).zip(a2).zip(a3);
                if dense {
                    let mut acc = [[0.0f32; NR]; MR];
                    for ((((&v0, &v1), &v2), &v3), prow) in lanes.zip(panel.chunks_exact(NR)) {
                        for c in 0..NR {
                            let p = prow[c];
                            acc[0][c] += v0 * p;
                            acc[1][c] += v1 * p;
                            acc[2][c] += v2 * p;
                            acc[3][c] += v3 * p;
                        }
                    }
                    store_tile(out, &acc, MR, NR, r0, j0, n);
                } else {
                    // `!= 0.0` is the historic zero-skip inverted: NaN
                    // compares unequal, so NaN lanes still multiply
                    // through, and exact zeros contribute nothing.
                    let mut acc = [[0.0f32; NR]; MR];
                    for ((((&v0, &v1), &v2), &v3), prow) in lanes.zip(panel.chunks_exact(NR)) {
                        if v0 != 0.0 {
                            for c in 0..NR {
                                acc[0][c] += v0 * prow[c];
                            }
                        }
                        if v1 != 0.0 {
                            for c in 0..NR {
                                acc[1][c] += v1 * prow[c];
                            }
                        }
                        if v2 != 0.0 {
                            for c in 0..NR {
                                acc[2][c] += v2 * prow[c];
                            }
                        }
                        if v3 != 0.0 {
                            for c in 0..NR {
                                acc[3][c] += v3 * prow[c];
                            }
                        }
                    }
                    store_tile(out, &acc, MR, NR, r0, j0, n);
                }
            } else {
                let mut acc = [[0.0f32; NR]; MR];
                for kk in 0..k {
                    let prow = &panel[kk * NR..kk * NR + NR];
                    for (r, accr) in acc.iter_mut().enumerate().take(mc) {
                        let aik = a[(i0 + r0 + r) * k + kk];
                        if aik == 0.0 {
                            continue;
                        }
                        for c in 0..nc {
                            accr[c] += aik * prow[c];
                        }
                    }
                }
                store_tile(out, &acc, mc, nc, r0, j0, n);
            }
        }
    }
    scratch::recycle(packed);
}

/// Tiled `C[i0..i0+rows, :] = Aᵀ · B` for `A: [k, m]`, `B: [k, n]`.
///
/// `m` is the full height of the output (`A`'s column count); `out` covers
/// `rows` rows starting at absolute row `i0` and is fully overwritten.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: as in `gemm_nn` — runtime-checked feature, no intrinsics,
        // no fma, so lanes stay bit-identical to the scalar build.
        unsafe { gemm_tn_avx2(a, b, out, i0, rows, m, k, n) };
        return;
    }
    gemm_tn_impl(a, b, out, i0, rows, m, k, n);
}

// SAFETY: `unsafe fn` solely because of `#[target_feature]`; the body is
// safe code. Callers must verify AVX2 at runtime before calling.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_tn_avx2(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    gemm_tn_impl(a, b, out, i0, rows, m, k, n);
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_tn_impl(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    if rows == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // Empty reduction: every element is an empty sum, exactly as the
        // naive kernels leave a zero-filled `out` untouched.
        out[..rows * n].fill(0.0);
        return;
    }
    // As in `gemm_nn`: pack all of B's NR-column blocks up front so the row
    // loop can run outermost and the zero scan amortizes to one pass over A.
    let nblocks = n.div_ceil(NR);
    let mut packed = scratch::take(nblocks * k * NR);
    for (jb, block) in packed.chunks_exact_mut(k * NR).enumerate() {
        let j0 = jb * NR;
        let nc = NR.min(n - j0);
        for kk in 0..k {
            block[kk * NR..kk * NR + nc].copy_from_slice(&b[kk * n + j0..kk * n + j0 + nc]);
        }
    }
    for r0 in (0..rows).step_by(MR) {
        let mc = MR.min(rows - r0);
        let c0 = i0 + r0;
        // Hoisted zero scan, as in `gemm_nn` (A's tile elements sit at a
        // strided 4-wide slice per k step — adjacent columns of Aᵀ).
        let dense = mc == MR
            && (0..k).all(|kk| {
                let av = &a[kk * m + c0..kk * m + c0 + MR];
                av[0] != 0.0 && av[1] != 0.0 && av[2] != 0.0 && av[3] != 0.0
            });
        for (jb, panel) in packed.chunks_exact(k * NR).enumerate() {
            let j0 = jb * NR;
            let nc = NR.min(n - j0);
            if mc == MR && nc == NR {
                // Full tile: the tile's four A elements at each k step sit
                // contiguously at a[kk*m + c0..] (they are adjacent columns
                // of Aᵀ), so one 4-wide slice feeds the unrolled rows.
                if dense {
                    let mut acc = [[0.0f32; NR]; MR];
                    for (kk, prow) in panel.chunks_exact(NR).enumerate() {
                        let av = &a[kk * m + c0..kk * m + c0 + MR];
                        let (v0, v1, v2, v3) = (av[0], av[1], av[2], av[3]);
                        for c in 0..NR {
                            let p = prow[c];
                            acc[0][c] += v0 * p;
                            acc[1][c] += v1 * p;
                            acc[2][c] += v2 * p;
                            acc[3][c] += v3 * p;
                        }
                    }
                    store_tile(out, &acc, MR, NR, r0, j0, n);
                } else {
                    let mut acc = [[0.0f32; NR]; MR];
                    for (kk, prow) in panel.chunks_exact(NR).enumerate() {
                        let av = &a[kk * m + c0..kk * m + c0 + MR];
                        let (v0, v1, v2, v3) = (av[0], av[1], av[2], av[3]);
                        if v0 != 0.0 {
                            for c in 0..NR {
                                acc[0][c] += v0 * prow[c];
                            }
                        }
                        if v1 != 0.0 {
                            for c in 0..NR {
                                acc[1][c] += v1 * prow[c];
                            }
                        }
                        if v2 != 0.0 {
                            for c in 0..NR {
                                acc[2][c] += v2 * prow[c];
                            }
                        }
                        if v3 != 0.0 {
                            for c in 0..NR {
                                acc[3][c] += v3 * prow[c];
                            }
                        }
                    }
                    store_tile(out, &acc, MR, NR, r0, j0, n);
                }
            } else {
                let mut acc = [[0.0f32; NR]; MR];
                for kk in 0..k {
                    let prow = &panel[kk * NR..kk * NR + NR];
                    // A's row-tile elements sit contiguously at a[kk*m + i..].
                    let arow = &a[kk * m + i0 + r0..kk * m + i0 + r0 + mc];
                    for (r, accr) in acc.iter_mut().enumerate().take(mc) {
                        let aki = arow[r];
                        if aki == 0.0 {
                            continue;
                        }
                        for c in 0..nc {
                            accr[c] += aki * prow[c];
                        }
                    }
                }
                store_tile(out, &acc, mc, nc, r0, j0, n);
            }
        }
    }
    scratch::recycle(packed);
}

/// Tiled `C[i0..i0+rows, :] = A · Bᵀ` for `A: [m, k]`, `B: [n, k]`.
///
/// No zero-skip: every element is a plain ascending-`k` dot product, as in
/// the naive kernel. `out` covers `rows` rows starting at absolute row `i0`
/// and is fully overwritten.
pub fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, rows: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: as in `gemm_nn` — runtime-checked feature, no intrinsics,
        // no fma, so lanes stay bit-identical to the scalar build.
        unsafe { gemm_nt_avx2(a, b, out, i0, rows, k, n) };
        return;
    }
    gemm_nt_impl(a, b, out, i0, rows, k, n);
}

// SAFETY: `unsafe fn` solely because of `#[target_feature]`; the body is
// safe code. Callers must verify AVX2 at runtime before calling.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nt_avx2(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, rows: usize, k: usize, n: usize) {
    gemm_nt_impl(a, b, out, i0, rows, k, n);
}

#[inline(always)]
fn gemm_nt_impl(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, rows: usize, k: usize, n: usize) {
    if rows == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // Empty reduction: every element is an empty sum, exactly as the
        // naive kernels leave a zero-filled `out` untouched.
        out[..rows * n].fill(0.0);
        return;
    }
    // Pack Bᵀ's column blocks into [block][k, NR] so the inner loop reads
    // them contiguously, exactly like the nn/tn panels (all blocks packed
    // up front, row loop outermost).
    let nblocks = n.div_ceil(NR);
    let mut packed = scratch::take(nblocks * k * NR);
    for (jb, block) in packed.chunks_exact_mut(k * NR).enumerate() {
        let j0 = jb * NR;
        let nc = NR.min(n - j0);
        for (c, col) in (j0..j0 + nc).enumerate() {
            for kk in 0..k {
                block[kk * NR + c] = b[col * k + kk];
            }
        }
    }
    for r0 in (0..rows).step_by(MR) {
        let mc = MR.min(rows - r0);
        for (jb, panel) in packed.chunks_exact(k * NR).enumerate() {
            let j0 = jb * NR;
            let nc = NR.min(n - j0);
            if mc == MR && nc == NR {
                // Full tile, unrolled like `gemm_nn` — but with no
                // zero-skip: nt is a plain dot product.
                let base = (i0 + r0) * k;
                let a0 = &a[base..base + k];
                let a1 = &a[base + k..base + 2 * k];
                let a2 = &a[base + 2 * k..base + 3 * k];
                let a3 = &a[base + 3 * k..base + 4 * k];
                let lanes = a0.iter().zip(a1).zip(a2).zip(a3);
                let mut acc = [[0.0f32; NR]; MR];
                for ((((&v0, &v1), &v2), &v3), prow) in lanes.zip(panel.chunks_exact(NR)) {
                    for c in 0..NR {
                        let p = prow[c];
                        acc[0][c] += v0 * p;
                        acc[1][c] += v1 * p;
                        acc[2][c] += v2 * p;
                        acc[3][c] += v3 * p;
                    }
                }
                store_tile(out, &acc, MR, NR, r0, j0, n);
            } else {
                let mut acc = [[0.0f32; NR]; MR];
                for kk in 0..k {
                    let prow = &panel[kk * NR..kk * NR + NR];
                    for (r, accr) in acc.iter_mut().enumerate().take(mc) {
                        let aik = a[(i0 + r0 + r) * k + kk];
                        for c in 0..nc {
                            accr[c] += aik * prow[c];
                        }
                    }
                }
                store_tile(out, &acc, mc, nc, r0, j0, n);
            }
        }
    }
    scratch::recycle(packed);
}

// ---------------------------------------------------------------------------
// Naive references (the seed kernels, retained verbatim)
// ---------------------------------------------------------------------------

/// The historic i-k-j `matmul` kernel, kept as the bitwise reference the
/// tiled [`gemm_nn`] must reproduce. `out` must be zero-filled on entry.
pub fn naive_nn(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, k: usize, n: usize) {
    for (r, orow) in out.chunks_mut(n).enumerate() {
        let i = i0 + r;
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                *o += aik * bkj;
            }
        }
    }
}

/// The historic `matmul_tn` kernel (bitwise reference for [`gemm_tn`]).
/// `out` must be zero-filled on entry.
pub fn naive_tn(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, m: usize, k: usize, n: usize) {
    for (r, orow) in out.chunks_mut(n).enumerate() {
        let i = i0 + r;
        for kk in 0..k {
            let aki = a[kk * m + i];
            if aki == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                *o += aki * bkj;
            }
        }
    }
}

/// The historic `matmul_nt` kernel (bitwise reference for [`gemm_nt`]).
pub fn naive_nt(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, k: usize, n: usize) {
    for (r, orow) in out.chunks_mut(n).enumerate() {
        let i = i0 + r;
        let arow = &a[i * k..(i + 1) * k];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32 - n as f32 / 2.0) * scale).collect()
    }

    fn assert_bits_eq(tiled: &[f32], naive: &[f32], what: &str) {
        assert_eq!(tiled.len(), naive.len(), "{what}: length drift");
        for (i, (t, r)) in tiled.iter().zip(naive).enumerate() {
            assert_eq!(t.to_bits(), r.to_bits(), "{what}: element {i} ({t} vs {r})");
        }
    }

    #[test]
    fn tiled_nn_matches_naive_across_remainders() {
        // Every MR/NR remainder combination, including sub-tile shapes.
        for m in [1, 3, MR, MR + 1, 2 * MR + 3] {
            for n in [1, NR - 1, NR, NR + 1, 2 * NR + 5] {
                for k in [0, 1, 7] {
                    let a = seq(m * k, 0.25);
                    let b = seq(k * n, 0.5);
                    let mut tiled = vec![0.0; m * n];
                    let mut naive = vec![0.0; m * n];
                    gemm_nn(&a, &b, &mut tiled, 0, m, k, n);
                    naive_nn(&a, &b, &mut naive, 0, k, n);
                    assert_bits_eq(&tiled, &naive, &format!("nn {m}x{k}x{n}"));
                }
            }
        }
    }

    #[test]
    fn tiled_tn_matches_naive_across_remainders() {
        for m in [1, MR, MR + 2] {
            for n in [1, NR, NR + 3] {
                for k in [1, 6] {
                    let a = seq(k * m, 0.25);
                    let b = seq(k * n, 0.5);
                    let mut tiled = vec![0.0; m * n];
                    let mut naive = vec![0.0; m * n];
                    gemm_tn(&a, &b, &mut tiled, 0, m, m, k, n);
                    naive_tn(&a, &b, &mut naive, 0, m, k, n);
                    assert_bits_eq(&tiled, &naive, &format!("tn {m}x{k}x{n}"));
                }
            }
        }
    }

    #[test]
    fn tiled_nt_matches_naive_across_remainders() {
        for m in [1, MR, MR + 2] {
            for n in [1, NR, NR + 3] {
                for k in [1, 6] {
                    let a = seq(m * k, 0.25);
                    let b = seq(n * k, 0.5);
                    let mut tiled = vec![0.0; m * n];
                    let mut naive = vec![0.0; m * n];
                    gemm_nt(&a, &b, &mut tiled, 0, m, k, n);
                    naive_nt(&a, &b, &mut naive, 0, k, n);
                    assert_bits_eq(&tiled, &naive, &format!("nt {m}x{k}x{n}"));
                }
            }
        }
    }

    #[test]
    fn row_chunks_compose_to_the_full_product() {
        // The par layer hands kernels disjoint row ranges; gluing two ranges
        // must equal one full-range call.
        let (m, k, n) = (7, 5, 11);
        let a = seq(m * k, 0.3);
        let b = seq(k * n, 0.7);
        let mut full = vec![0.0; m * n];
        gemm_nn(&a, &b, &mut full, 0, m, k, n);
        let mut split = vec![0.0; m * n];
        let (top, bottom) = split.split_at_mut(3 * n);
        gemm_nn(&a, &b, top, 0, 3, k, n);
        gemm_nn(&a, &b, bottom, 3, 4, k, n);
        assert_bits_eq(&split, &full, "row-chunk composition");
    }
}
