//! Distributed-training integration tests, over real TCP sockets:
//!
//! * **BSP bitwise identity** — the parameter server's final model is
//!   byte-for-byte identical to single-process `Trainer::fit_resumable`
//!   with the same seed, at 1, 2 and 4 workers, and *still* identical when
//!   a worker dies mid-run and a respawned incarnation takes over.
//! * **Fault matrix** — under each `dcn-fault` network injector class
//!   (connect-refused, mid-frame reset, short-read) the run completes via
//!   bounded retry/reconnect, and the BSP answer stays bitwise unchanged.
//! * **Retry determinism** — two runs under the same fault plan produce
//!   identical outcomes and identical observability counters.
//! * **Async degradation** — losing a worker above quorum degrades
//!   gracefully; falling below quorum is a typed `QuorumLost` (exit 8).
//!
//! Every test takes the shared plan lock: the fault plan and the obs
//! toggle are process globals, and runs must not observe a neighboring
//! test's plan.

use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use dcn_core::DcnError;
use dcn_fault::FaultPlan;
use dcn_nn::{Adam, TrainConfig, Trainer};
use dcn_ps::{
    build_job, run_worker, serve, Mode, ServerConfig, TrainSummary, WorkerConfig,
};

static PLAN_LOCK: Mutex<()> = Mutex::new(());

const TASK: &str = "mnist";
const N: usize = 64;
const EPOCHS: usize = 2;
const BATCH: usize = 32;
const SEED: u64 = 42;
const LR: f32 = 0.002;

fn lock() -> std::sync::MutexGuard<'static, ()> {
    PLAN_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The canonical lock-acquisition order from `ci/lint/lock_order.txt` —
/// the same file the static `lock-order` rule enforces.
fn canonical_lock_order() -> Vec<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ci/lint/lock_order.txt");
    std::fs::read_to_string(path)
        .expect("canonical lock-order file")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Asserts the runtime witness's observed acquisition DAG is consistent
/// with the canonical order: every site declared, every edge forward.
fn assert_witness_matches_canon() {
    if !dcn_obs::ordered::witness_compiled() {
        return;
    }
    let canon = canonical_lock_order();
    let sites = dcn_obs::ordered::witness_sites();
    assert!(
        sites.contains(&"ps.state".to_string()),
        "witness never saw the coordinator lock: {sites:?}"
    );
    for site in &sites {
        assert!(
            canon.contains(site),
            "witnessed site {site:?} is not declared in ci/lint/lock_order.txt"
        );
    }
    for (from, to) in dcn_obs::ordered::witness_edges() {
        let pf = canon.iter().position(|s| *s == from);
        let pt = canon.iter().position(|s| *s == to);
        assert!(
            pf < pt,
            "observed acquisition {from:?} -> {to:?} runs against the canonical order"
        );
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "dcn_ps_test_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// The single-process ground truth: the exact `fit_resumable` path the
/// `dcn train --checkpoint` CLI command runs.
fn reference_model_json() -> String {
    let job = build_job(TASK, N, SEED).expect("build job");
    let mut net = job.net;
    let mut opt = Adam::new(LR);
    let ckpt = temp_path("ref_ckpt");
    let config = TrainConfig {
        epochs: EPOCHS,
        batch_size: BATCH,
        ..TrainConfig::default()
    };
    Trainer::new(config)
        .fit_resumable(
            &mut net,
            job.train.images(),
            job.train.labels(),
            &mut opt,
            SEED,
            &ckpt,
        )
        .expect("reference training");
    let _ = std::fs::remove_file(&ckpt);
    net.to_json().expect("reference model json")
}

fn base_config(mode: Mode, workers: usize) -> ServerConfig {
    ServerConfig {
        task: TASK.to_string(),
        n: N,
        epochs: EPOCHS,
        batch_size: BATCH,
        seed: SEED,
        mode,
        workers,
        min_quorum: 1,
        lr: LR,
        straggler: Duration::from_millis(400),
        ..ServerConfig::default()
    }
}

/// Runs a full server + in-process workers job and returns the summary
/// plus the saved final model bytes.
fn run_job(cfg: ServerConfig, workers: usize) -> (TrainSummary, String) {
    let out = temp_path("model");
    let cfg = ServerConfig {
        out: Some(out.clone()),
        ..cfg
    };
    let server = serve(cfg).expect("serve");
    let summary = server.drive_local(workers).expect("run");
    let bytes = std::fs::read_to_string(&out).expect("saved model");
    let _ = std::fs::remove_file(&out);
    (summary, bytes)
}

#[test]
fn bsp_final_model_is_bitwise_identical_to_single_process() {
    let _guard = lock();
    dcn_fault::set_plan(None);
    let reference = reference_model_json();
    for workers in [1usize, 2, 4] {
        let (summary, model) = run_job(base_config(Mode::Bsp, workers), workers);
        assert_eq!(
            model, reference,
            "BSP with {workers} workers diverged from the single-process model"
        );
        assert_eq!(summary.version, (EPOCHS * N.div_ceil(BATCH)) as u64);
        assert_eq!(summary.workers_lost, 0);
    }
}

#[test]
fn bsp_survives_worker_death_and_respawn_bitwise() {
    let _guard = lock();
    dcn_fault::set_plan(None);
    // This leg runs under the runtime lock-order witness: worker death,
    // respawn, and the straggler sweep all cross the coordinator lock,
    // and the observed acquisitions must stay consistent with the
    // canonical order the static `lock-order` rule enforces.
    dcn_obs::ordered::reset_witness();
    dcn_obs::ordered::set_witness_enabled(true);
    let reference = reference_model_json();
    let out = temp_path("death_model");
    let cfg = ServerConfig {
        out: Some(out.clone()),
        ..base_config(Mode::Bsp, 2)
    };
    let server = serve(cfg).expect("serve");
    let addr = server.addr().to_string();

    // Worker 0 crashes (socket dropped, no goodbye) after one applied
    // push; worker 1 soldiers on; a respawned incarnation of worker 0
    // rejoins and helps finish.
    let dying = WorkerConfig {
        addr: addr.clone(),
        worker: 0,
        die_after_pushes: Some(1),
        ..WorkerConfig::default()
    };
    let healthy = WorkerConfig {
        addr: addr.clone(),
        worker: 1,
        ..WorkerConfig::default()
    };
    let h_dying = std::thread::spawn(move || run_worker(&dying));
    let h_healthy = std::thread::spawn(move || run_worker(&healthy));
    h_dying
        .join()
        .expect("dying worker thread")
        .expect("dying worker exits cleanly at its crash point");
    let respawned = WorkerConfig {
        addr,
        worker: 0,
        incarnation: 1,
        ..WorkerConfig::default()
    };
    let h_respawned = std::thread::spawn(move || run_worker(&respawned));

    let summary = server.join().expect("run completes");
    h_healthy.join().expect("healthy thread").expect("healthy worker");
    h_respawned.join().expect("respawn thread").expect("respawned worker");

    let model = std::fs::read_to_string(&out).expect("saved model");
    let _ = std::fs::remove_file(&out);
    assert_eq!(
        model, reference,
        "worker death + respawn changed the BSP result"
    );
    assert!(summary.workers_lost >= 1, "the crash was never noticed");
    assert_witness_matches_canon();
    dcn_obs::ordered::clear_witness_override();
}

#[test]
fn bsp_resumes_from_shard_checkpoints_after_server_crash() {
    let _guard = lock();
    dcn_fault::set_plan(None);
    let reference = reference_model_json();
    let dir = temp_path("shards");
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: run only the first epoch (a "crashed" server that managed
    // one epoch checkpoint), by limiting epochs to 1 against the same dir.
    let phase1 = ServerConfig {
        epochs: 1,
        shard_dir: Some(dir.clone()),
        ..base_config(Mode::Bsp, 1)
    };
    run_job(phase1, 1);

    // Phase 2: a fresh server with the full epoch budget resumes from the
    // sealed shards and finishes; the final model must match a run that
    // never crashed.
    let out = temp_path("resume_model");
    let phase2 = ServerConfig {
        shard_dir: Some(dir.clone()),
        out: Some(out.clone()),
        ..base_config(Mode::Bsp, 1)
    };
    let server = serve(phase2).expect("serve resumed");
    let summary = server.drive_local(1).expect("resumed run");
    let model = std::fs::read_to_string(&out).expect("saved model");
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(model, reference, "shard-checkpoint resume diverged");
    assert_eq!(summary.epoch_losses.len(), EPOCHS);
}

#[test]
fn fault_matrix_every_injector_class_is_survived_bitwise() {
    let _guard = lock();
    dcn_fault::set_plan(None);
    let reference = reference_model_json();
    let plans = [
        (
            "connect_refused",
            FaultPlan {
                seed: 7,
                connect_refused_rate: 0.4,
                ..FaultPlan::default()
            },
        ),
        (
            "conn_reset",
            FaultPlan {
                seed: 11,
                reset_rate: 0.03,
                ..FaultPlan::default()
            },
        ),
        (
            "short_read",
            FaultPlan {
                seed: 13,
                short_read: Some(2),
                ..FaultPlan::default()
            },
        ),
    ];
    for (name, plan) in plans {
        dcn_fault::set_plan(Some(plan));
        let cfg = base_config(Mode::Bsp, 2);
        let out = temp_path("fault_model");
        let cfg = ServerConfig {
            out: Some(out.clone()),
            ..cfg
        };
        let server = serve(cfg).expect("serve");
        let addr = server.addr().to_string();
        let handles: Vec<_> = (0..2u32)
            .map(|w| {
                let base = WorkerConfig::default();
                let wcfg = WorkerConfig {
                    addr: addr.clone(),
                    worker: w,
                    reconnects: 64,
                    retry: dcn_fault::RetryPolicy {
                        attempts: 12,
                        ..base.retry
                    },
                    ..base
                };
                std::thread::spawn(move || run_worker(&wcfg))
            })
            .collect();
        let summary = server.join();
        for h in handles {
            h.join()
                .expect("worker thread")
                .unwrap_or_else(|e| panic!("{name}: worker failed: {e}"));
        }
        summary.unwrap_or_else(|e| panic!("{name}: run failed: {e}"));
        let model = std::fs::read_to_string(&out).expect("saved model");
        let _ = std::fs::remove_file(&out);
        dcn_fault::set_plan(None);
        assert_eq!(
            model, reference,
            "{name}: injected faults changed the BSP result"
        );
    }
}

#[test]
fn retries_are_deterministic_across_identical_runs() {
    let _guard = lock();
    // A worker dialing a dead address under a connect-refusal plan: the
    // outcome class AND every counter must be identical across two runs of
    // the same plan — retries are replayable, not best-effort noise.
    let plan = FaultPlan {
        seed: 99,
        connect_refused_rate: 0.5,
        ..FaultPlan::default()
    };
    let run = || {
        dcn_fault::set_plan(Some(plan));
        dcn_obs::set_enabled(true);
        dcn_obs::reset();
        let cfg = WorkerConfig {
            // Reserved port on localhost: refused fast, never listening.
            addr: "127.0.0.1:1".to_string(),
            worker: 0,
            ..WorkerConfig::default()
        };
        let outcome = run_worker(&cfg);
        let snap = dcn_obs::snapshot("retry-determinism");
        let injected = snap.counter(dcn_fault::names::INJECTED_CONNECT_REFUSED_TOTAL);
        dcn_obs::set_enabled(false);
        dcn_obs::clear_enabled_override();
        dcn_fault::set_plan(None);
        (format!("{outcome:?}"), injected)
    };
    let (outcome_a, counters_a) = run();
    let (outcome_b, counters_b) = run();
    assert_eq!(outcome_a, outcome_b, "retry outcome differed across runs");
    assert_eq!(counters_a, counters_b, "injection counters differed");
    assert!(
        outcome_a.contains("PeerLost"),
        "a dead address must end in PeerLost, got {outcome_a}"
    );
}

#[test]
fn async_degrades_gracefully_above_quorum() {
    let _guard = lock();
    dcn_fault::set_plan(None);
    let cfg = ServerConfig {
        min_quorum: 1,
        straggler: Duration::from_millis(600),
        ..base_config(Mode::Async, 2)
    };
    let server = serve(cfg).expect("serve");
    let addr = server.addr().to_string();
    let dying = WorkerConfig {
        addr: addr.clone(),
        worker: 0,
        die_after_pushes: Some(1),
        ..WorkerConfig::default()
    };
    let healthy = WorkerConfig {
        addr,
        worker: 1,
        ..WorkerConfig::default()
    };
    let h_dying = std::thread::spawn(move || run_worker(&dying));
    let h_healthy = std::thread::spawn(move || run_worker(&healthy));
    let summary = server.join().expect("degraded run still completes");
    h_dying.join().expect("thread").expect("dying worker");
    h_healthy.join().expect("thread").expect("healthy worker");
    assert_eq!(summary.workers_lost, 1);
    assert!(
        summary.degraded_batches > 0,
        "a dead partition must be reported as degraded batches"
    );
    assert!(summary.accuracy.is_finite());
}

#[test]
fn async_below_quorum_is_a_typed_quorum_lost() {
    let _guard = lock();
    dcn_fault::set_plan(None);
    let cfg = ServerConfig {
        min_quorum: 2,
        straggler: Duration::from_millis(600),
        // Enough epochs that the survivor is still mid-run when the other
        // worker's death (noticed within milliseconds of its first push)
        // breaks quorum — so the in-band error propagation is exercised.
        epochs: 8,
        ..base_config(Mode::Async, 2)
    };
    let server = serve(cfg).expect("serve");
    let addr = server.addr().to_string();
    let dying = WorkerConfig {
        addr: addr.clone(),
        worker: 0,
        die_after_pushes: Some(1),
        ..WorkerConfig::default()
    };
    let healthy = WorkerConfig {
        addr,
        worker: 1,
        ..WorkerConfig::default()
    };
    let h_dying = std::thread::spawn(move || run_worker(&dying));
    let h_healthy = std::thread::spawn(move || run_worker(&healthy));
    let err = server.join().expect_err("losing quorum must fail the run");
    h_dying.join().expect("thread").expect("dying worker");
    assert!(
        matches!(err, DcnError::QuorumLost { alive: 0 | 1, quorum: 2 }),
        "got {err:?}"
    );
    assert_eq!(err.exit_code(), 8);
    // The surviving worker is told, in-band, that the run lost quorum.
    let healthy_err = h_healthy
        .join()
        .expect("thread")
        .expect_err("survivor must see the typed failure");
    assert!(
        matches!(healthy_err, DcnError::QuorumLost { .. }),
        "got {healthy_err:?}"
    );
}
