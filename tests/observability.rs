//! Exact observability accounting over a deterministic DCN pipeline.
//!
//! This binary deliberately holds a single `#[test]`: exact assertions on
//! the *global* metric registry only hold when no sibling test records into
//! it concurrently, so the whole scenario runs in its own process (cargo
//! gives every integration-test binary one).

use dcn_core::{Corrector, Dcn, DcnReport, DcnVerdict, Detector, DetectorConfig};
use dcn_nn::{Dense, Layer, Network};
use dcn_obs::names;
use dcn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The `crates/core/src/dcn.rs` fixture: a 1-D threshold net plus a
/// detector trained to flag low-margin logits.
fn build_dcn(samples: usize) -> Dcn {
    let mut rng = StdRng::seed_from_u64(12);
    let w = Tensor::from_vec(vec![1, 2], vec![-10.0, 10.0]).unwrap();
    let b = Tensor::from_slice(&[0.0, 0.0]);
    let mut net = Network::new(vec![1]);
    net.push(Layer::Dense(Dense::from_params(w, b).unwrap()));
    let benign: Vec<Tensor> = (0..200)
        .map(|i| {
            let v = 0.3 + 0.2 * ((i % 10) as f32 / 10.0);
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            Tensor::from_slice(&[-10.0 * s * v, 10.0 * s * v])
        })
        .collect();
    let adversarial: Vec<Tensor> = (0..200)
        .map(|i| {
            let v = 0.002 + 0.004 * ((i % 10) as f32 / 10.0);
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            Tensor::from_slice(&[-10.0 * s * v, 10.0 * s * v])
        })
        .collect();
    let detector =
        Detector::train_from_logits(&benign, &adversarial, &DetectorConfig::default(), &mut rng)
            .unwrap();
    Dcn::new(net, detector, Corrector::new(0.3, samples).unwrap())
}

fn run_queries(dcn: &Dcn, seed: u64) -> Vec<DcnReport> {
    // 5 deep-benign inputs and 3 just-across-the-boundary "adversarial"
    // ones, interleaved so both paths exercise the same rng stream shape.
    let benign = [-0.40f32, 0.35, -0.30, 0.45, -0.45];
    let adversarial = [0.004f32, -0.003, 0.002];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reports = Vec::new();
    for v in benign.iter().chain(adversarial.iter()) {
        reports.push(
            dcn.classify_with_report(&Tensor::from_slice(&[*v]), &mut rng)
                .unwrap(),
        );
    }
    reports
}

#[test]
fn exact_accounting_and_bitwise_noninterference() {
    const M: usize = 50;
    // Build everything with collection off so training noise stays out of
    // the ledger, then start from a clean slate.
    dcn_obs::set_enabled(false);
    let dcn = build_dcn(M);
    dcn_obs::reset();

    // --- Baseline run, observability disabled. ---
    let baseline = run_queries(&dcn, 77);
    assert_eq!(
        dcn_obs::snapshot("pre").counter(names::DCN_QUERIES_TOTAL),
        0,
        "disabled run must record nothing"
    );

    // --- Instrumented run: identical inputs, identical seed. ---
    dcn_obs::set_enabled(true);
    let observed = run_queries(&dcn, 77);
    dcn_obs::set_enabled(false);

    // Bitwise non-interference: enabling observability changes no output.
    assert_eq!(baseline, observed);

    let passed = observed
        .iter()
        .filter(|r| r.verdict == DcnVerdict::PassedThrough)
        .count() as u64;
    let corrected = observed
        .iter()
        .filter(|r| r.verdict == DcnVerdict::Corrected)
        .count() as u64;
    assert_eq!(passed, 5, "fixture: the 5 deep inputs pass through");
    assert_eq!(corrected, 3, "fixture: the 3 boundary inputs are corrected");

    // --- Exact counter accounting. ---
    let snap = dcn_obs::snapshot("observability");
    let queries = passed + corrected;
    assert_eq!(snap.counter(names::DCN_QUERIES_TOTAL), queries);
    assert_eq!(snap.counter(names::DCN_PASSED_THROUGH_TOTAL), passed);
    assert_eq!(snap.counter(names::DCN_CORRECTED_TOTAL), corrected);
    // The paper's cost asymmetry, measured: 1 pass per benign query,
    // 1 + m per corrected query.
    let expected_base_passes = passed + corrected * (1 + M as u64);
    assert_eq!(snap.counter(names::DCN_BASE_PASSES_TOTAL), expected_base_passes);
    assert_eq!(
        snap.counter(names::DCN_BASE_PASSES_TOTAL),
        observed.iter().map(|r| r.base_passes as u64).sum::<u64>(),
        "global ledger must equal the per-report sum"
    );
    assert_eq!(snap.counter(names::CORRECTOR_INVOCATIONS_TOTAL), corrected);
    assert_eq!(snap.counter(names::CORRECTOR_VOTES_TOTAL), corrected * M as u64);
    // Every classify consults the detector exactly once; only the
    // corrected ones were flagged.
    assert_eq!(snap.counter(names::DETECTOR_EVALUATED_TOTAL), queries);
    assert_eq!(snap.counter(names::DETECTOR_FLAGGED_TOTAL), corrected);
    // Forward passes through *any* Network: base logits (1) + detector MLP
    // (1) per query, plus m vote samples per correction.
    assert_eq!(
        snap.counter(names::FORWARD_PASSES_TOTAL),
        2 * queries + corrected * M as u64
    );

    // --- Vote-margin histogram and spans. ---
    let margin = snap
        .histogram(names::CORRECTOR_VOTE_MARGIN)
        .expect("vote-margin histogram registered");
    assert_eq!(margin.count, corrected);
    assert!(margin.max.unwrap_or(0.0) <= 1.0);
    let classify_span = snap
        .histogram("span.dcn.classify.seconds")
        .expect("dcn.classify span recorded");
    assert_eq!(classify_span.count, queries);
    let vote_span = snap
        .histogram("span.dcn.classify/corrector.vote.seconds")
        .expect("nested corrector span recorded");
    assert_eq!(vote_span.count, corrected);

    // --- Derived cost model reproduces the 1 vs 1 + m claim. ---
    assert_eq!(snap.cost.queries, queries);
    assert_eq!(snap.cost.base_passes, expected_base_passes);
    let amortized = snap.cost.amortized_passes_per_query();
    let expected = (passed as f64 + corrected as f64 * (1.0 + M as f64)) / queries as f64;
    assert!((amortized - expected).abs() < 1e-12);
    assert!((snap.cost.mean_votes_per_correction() - M as f64).abs() < 1e-12);

    // --- Export round-trips through the vendored serde_json. ---
    let dir = std::env::temp_dir().join("dcn_observability_test");
    let path = snap.write_to(&dir).expect("write snapshot");
    let text = std::fs::read_to_string(&path).unwrap();
    let value: serde_json::Value = serde_json::from_str(&text).expect("snapshot JSON parses");
    for key in ["run", "counters", "histograms", "cost"] {
        assert!(value.get_field(key).is_some(), "missing top-level key {key}");
    }
    let cost = value.get_field("cost").unwrap();
    assert_eq!(
        cost.get_field("base_passes").and_then(|v| v.as_f64()),
        Some(expected_base_passes as f64)
    );
    let _ = std::fs::remove_dir_all(&dir);

    // The summary table leads with the cost line the paper cares about.
    let rendered = snap.render();
    assert!(rendered.contains("passes/query"), "render: {rendered}");
}
