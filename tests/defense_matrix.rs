//! The paper's defense comparison matrix (Tables 3–5): the standard DNN,
//! defensive distillation, Region-based Classification and DCN evaluated
//! through the shared [`Defense`] trait on one small task.

use dcn_core::{
    defense_accuracy, distill, models, Corrector, Dcn, Defense, Detector, DetectorConfig,
    DistillConfig, RegionClassifier, StandardDefense,
};
use dcn_data::Dataset;
use dcn_nn::Network;
use dcn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Three Gaussian blobs in a 4-dim `[-0.5, 0.5]` box (same task family as
/// `end_to_end.rs`, regenerated here because integration tests are separate
/// binaries).
fn blobs(n: usize, rng: &mut StdRng) -> Dataset {
    const CENTERS: [[f32; 4]; 3] = [
        [-0.3, -0.3, 0.25, 0.0],
        [0.3, -0.3, -0.25, 0.1],
        [0.0, 0.35, 0.0, -0.3],
    ];
    let mut data = Vec::with_capacity(n * 4);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 3;
        for &c in &CENTERS[class] {
            let v: f32 = c + rng.gen_range(-0.06..0.06);
            data.push(v.clamp(-0.5, 0.5));
        }
        labels.push(class);
    }
    let images = Tensor::from_vec(vec![n, 4], data).unwrap();
    Dataset::new(images, labels, 3).unwrap()
}

fn build_matrix() -> (Vec<Box<dyn Defense>>, Dataset, StdRng) {
    let mut rng = StdRng::seed_from_u64(23);
    let train = blobs(240, &mut rng);
    let test = blobs(60, &mut rng);

    let base = models::mlp(4, 16, 3, &mut rng).unwrap();
    let base = models::train_classifier(base, &train, 40, 0.01, &mut rng).unwrap();

    // Defensive distillation: teacher and student share the architecture.
    let teacher = models::mlp(4, 16, 3, &mut rng).unwrap();
    let student = models::mlp(4, 16, 3, &mut rng).unwrap();
    let distilled = distill(
        teacher,
        student,
        &train,
        &DistillConfig {
            epochs: 20,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();

    // DCN: detector trained from hand-made logit sets (benign = confident
    // single peak, adversarial = two competing peaks) to keep this test
    // focused on the comparison plumbing rather than attack quality.
    let benign_logits: Vec<Tensor> = (0..120)
        .map(|i| {
            let mut v = [0.0f32; 3];
            v[i % 3] = 8.0 + (i % 5) as f32;
            Tensor::from_slice(&v)
        })
        .collect();
    let adv_logits: Vec<Tensor> = (0..120)
        .map(|i| {
            let mut v = [0.0f32; 3];
            v[i % 3] = 4.0;
            v[(i + 1) % 3] = 3.8 + 0.1 * (i % 3) as f32;
            Tensor::from_slice(&v)
        })
        .collect();
    let detector = Detector::train_from_logits(
        &benign_logits,
        &adv_logits,
        &DetectorConfig::default(),
        &mut rng,
    )
    .unwrap();
    let dcn = Dcn::new(
        base.clone(),
        detector,
        Corrector::new(0.15, 50).unwrap(),
    );

    let rc = RegionClassifier::new(base.clone(), 0.15, 200).unwrap();

    let defenses: Vec<Box<dyn Defense>> = vec![
        Box::new(StandardDefense::new(base)),
        Box::new(StandardDefense::named(distilled, "Distillation")),
        Box::new(rc),
        Box::new(dcn),
    ];
    (defenses, test, rng)
}

#[test]
fn all_four_defenses_classify_through_the_shared_trait() {
    let (defenses, test, mut rng) = build_matrix();
    let names: Vec<&str> = defenses.iter().map(|d| d.name()).collect();
    assert_eq!(names, ["Standard", "Distillation", "RC", "DCN"]);

    let examples: Vec<Tensor> = (0..test.len()).map(|i| test.example(i).unwrap()).collect();
    for d in &defenses {
        // Every defense returns a valid label for every input.
        for x in &examples {
            let label = d.classify(x, &mut rng).unwrap();
            assert!(label < 3, "{} produced out-of-range label {label}", d.name());
        }
        let acc = defense_accuracy(d.as_ref(), &examples, test.labels(), &mut rng).unwrap();
        assert!(
            (0.0..=1.0).contains(&acc),
            "{} accuracy out of range: {acc}",
            d.name()
        );
        // The blob task is easy; every defense in the matrix should beat
        // chance by a wide margin (the paper's Table 3 shows all defenses
        // within a few points of the standard model on benign data).
        assert!(acc >= 0.6, "{} benign accuracy too low: {acc}", d.name());
    }
}

#[test]
fn region_vote_defenses_track_the_base_network_on_confident_inputs() {
    let (defenses, test, mut rng) = build_matrix();
    let examples: Vec<Tensor> = (0..test.len()).map(|i| test.example(i).unwrap()).collect();

    let std_acc = defense_accuracy(defenses[0].as_ref(), &examples, test.labels(), &mut rng)
        .unwrap();
    let rc_acc = defense_accuracy(defenses[2].as_ref(), &examples, test.labels(), &mut rng)
        .unwrap();
    let dcn_acc = defense_accuracy(defenses[3].as_ref(), &examples, test.labels(), &mut rng)
        .unwrap();

    // Region voting around confidently-classified points returns the same
    // label (the paper's argument for why RC preserves benign accuracy).
    assert!(
        rc_acc >= std_acc - 0.15,
        "RC strayed from base accuracy: {rc_acc} vs {std_acc}"
    );
    assert!(
        dcn_acc >= std_acc - 0.15,
        "DCN strayed from base accuracy: {dcn_acc} vs {std_acc}"
    );
}

#[test]
fn matrix_components_are_reusable_via_accessors() {
    let mut rng = StdRng::seed_from_u64(31);
    let train = blobs(120, &mut rng);
    let base = models::mlp(4, 16, 3, &mut rng).unwrap();
    let base = models::train_classifier(base, &train, 30, 0.01, &mut rng).unwrap();

    let rc = RegionClassifier::new(base, 0.1, 64).unwrap();
    assert_eq!(rc.corrector().samples(), 64);
    assert!((rc.corrector().radius() - 0.1).abs() < 1e-6);
    let base_ref: &Network = rc.base();
    assert_eq!(base_ref.num_classes().unwrap(), 3);
}
