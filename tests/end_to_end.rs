//! End-to-end DCN workflow (the paper's Figs. 2–3): train a base
//! classifier, generate adversarial examples, train the logit detector
//! against them, assemble the full Detector-Corrector Network, and check
//! both branches of the pipeline on a task small enough to run in seconds.

use std::time::Duration;

use dcn_attacks::{evaluate_untargeted, CwL2};
use dcn_core::{
    attack_success_against, defense_accuracy, models, Corrector, Dcn, DcnVerdict, Defense,
    Detector, DetectorConfig, StandardDefense, VoteBudget,
};
use dcn_fault::FaultPlan;
use dcn_data::Dataset;
use dcn_nn::Network;
use dcn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Three well-separated Gaussian blobs in a 4-dim `[-0.5, 0.5]` box — a
/// stand-in task a tiny MLP masters in a fraction of a second.
fn blobs(n: usize, rng: &mut StdRng) -> Dataset {
    const CENTERS: [[f32; 4]; 3] = [
        [-0.3, -0.3, 0.25, 0.0],
        [0.3, -0.3, -0.25, 0.1],
        [0.0, 0.35, 0.0, -0.3],
    ];
    let mut data = Vec::with_capacity(n * 4);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 3;
        for &c in &CENTERS[class] {
            let v: f32 = c + rng.gen_range(-0.06..0.06);
            data.push(v.clamp(-0.5, 0.5));
        }
        labels.push(class);
    }
    let images = Tensor::from_vec(vec![n, 4], data).unwrap();
    Dataset::new(images, labels, 3).unwrap()
}

fn trained_setup(seed: u64) -> (Network, Dataset, Dataset, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = blobs(240, &mut rng);
    let test = blobs(60, &mut rng);
    let net = models::mlp(4, 16, 3, &mut rng).unwrap();
    let net = models::train_classifier(net, &train, 40, 0.01, &mut rng).unwrap();
    (net, train, test, rng)
}

#[test]
fn full_pipeline_trains_attacks_detects_and_corrects() {
    let (net, _train, test, mut rng) = trained_setup(7);
    let base_acc = models::accuracy_on(&net, &test).unwrap();
    assert!(base_acc >= 0.9, "base accuracy too low: {base_acc}");

    // Attack the base network (CW-L2 is the attack the paper trains the
    // detector on) over a handful of test seeds.
    let seeds: Vec<Tensor> = (0..8).map(|i| test.example(i).unwrap()).collect();
    let attack = CwL2::new(0.0);
    let (stats, advs) = evaluate_untargeted(&attack, &net, &seeds).unwrap();
    assert!(
        stats.successes >= seeds.len() / 2,
        "CW-L2 should fool an undefended net on most seeds, got {}/{}",
        stats.successes,
        stats.attempts
    );
    for ex in &advs {
        assert_ne!(ex.adversarial_label, ex.original_label);
        assert!(ex.dist_l2 > 0.0);
    }

    // Train the detector against the same attack, then assemble the DCN.
    let detector = Detector::train_against(
        &net,
        &seeds,
        &attack,
        &DetectorConfig::default(),
        &mut rng,
    )
    .unwrap();
    let dcn = Dcn::new(net.clone(), detector, Corrector::new(0.15, 50).unwrap());

    // Benign inputs should overwhelmingly pass straight through at cost 1.
    let mut passed = 0usize;
    for i in 0..test.len() {
        let x = test.example(i).unwrap();
        let (label, verdict) = dcn.classify_with_verdict(&x, &mut rng).unwrap();
        assert!(label < 3);
        if verdict == DcnVerdict::PassedThrough {
            assert_eq!(dcn.cost_of(verdict), 1);
            passed += 1;
        } else {
            assert_eq!(dcn.cost_of(verdict), 51);
        }
    }
    assert!(
        passed * 2 >= test.len(),
        "most benign inputs should pass through, got {passed}/{}",
        test.len()
    );

    // Adversarial inputs should overwhelmingly activate the corrector.
    let mut corrected = 0usize;
    for ex in &advs {
        let (_, verdict) = dcn.classify_with_verdict(&ex.adversarial, &mut rng).unwrap();
        if verdict == DcnVerdict::Corrected {
            corrected += 1;
        }
    }
    assert!(
        corrected * 2 >= advs.len(),
        "most adversarial inputs should be flagged, got {corrected}/{}",
        advs.len()
    );

    // Table 3/4 style comparison: the DCN keeps benign accuracy close to
    // the base network and never increases attack success.
    let examples: Vec<Tensor> = (0..test.len()).map(|i| test.example(i).unwrap()).collect();
    let std_def = StandardDefense::new(net);
    let std_acc = defense_accuracy(&std_def, &examples, test.labels(), &mut rng).unwrap();
    let dcn_acc = defense_accuracy(&dcn, &examples, test.labels(), &mut rng).unwrap();
    assert!(
        dcn_acc >= std_acc - 0.2,
        "DCN benign accuracy dropped too far: {dcn_acc} vs {std_acc}"
    );

    let std_rate = attack_success_against(&std_def, &advs, &mut rng).unwrap();
    let dcn_rate = attack_success_against(&dcn, &advs, &mut rng).unwrap();
    assert!((std_rate - 1.0).abs() < 1e-6, "all advs fool the bare net");
    assert!(
        dcn_rate <= std_rate,
        "DCN must not make attacks more successful: {dcn_rate} vs {std_rate}"
    );

    // Under DCN_OBS=1 the run above recorded real metrics: sanity-check the
    // headline counters (tolerant `> 0` bounds — the sibling test in this
    // binary may be recording concurrently) and export the snapshot.
    if dcn_obs::enabled() {
        use dcn_obs::names;
        let snap = dcn_obs::snapshot("end_to_end");
        assert!(snap.counter(names::FORWARD_PASSES_TOTAL) > 0);
        assert!(snap.counter(names::DETECTOR_EVALUATED_TOTAL) > 0);
        assert!(snap.counter(names::DETECTOR_FLAGGED_TOTAL) > 0);
        assert!(snap.counter(names::DCN_QUERIES_TOTAL) > 0);
        assert!(
            snap.histogram(names::CORRECTOR_VOTE_MARGIN)
                .is_some_and(|h| h.count > 0),
            "vote-margin histogram empty"
        );
        assert_eq!(snap.cost.queries, snap.cost.passed_through + snap.cost.corrected);
        assert!(snap.cost.amortized_passes_per_query() >= 1.0);
        let path = dcn_obs::maybe_export("end_to_end").expect("obs export path");
        assert!(path.exists());
    }
}

/// Deadline-bounded serving degrades deterministically instead of failing:
/// under injected per-vote latency the corrector truncates its vote at a
/// fixed point, flags the answer as degraded, and two identical runs agree
/// bitwise. With injection off, the bounded entry point is bitwise
/// identical to the legacy path.
///
/// The injected plan is latency-only (no IO/NaN/budget classes), so a
/// concurrently running sibling test sees identical outcomes — without a
/// deadline the virtual clock never truncates anything.
#[test]
fn deadline_degradation_is_deterministic_and_benign_accuracy_holds() {
    let (net, _train, test, mut rng) = trained_setup(13);
    let seeds: Vec<Tensor> = (0..6).map(|i| test.example(i).unwrap()).collect();
    let detector = Detector::train_against(
        &net,
        &seeds,
        &CwL2::new(0.0),
        &DetectorConfig::default(),
        &mut rng,
    )
    .unwrap();
    let dcn = Dcn::new(net, detector, Corrector::new(0.15, 50).unwrap());

    // 2 ms of virtual time per vote against a 20 ms deadline: exactly 10 of
    // the 50 votes fit, on every run, on any machine.
    let plan = FaultPlan {
        latency_ns: 2_000_000,
        ..FaultPlan::default()
    };
    let budget = VoteBudget {
        max_votes: None,
        deadline: Some(Duration::from_millis(20)),
        min_quorum: 1,
    };

    dcn_fault::set_plan(Some(plan));
    let run = |seed: u64| -> (Vec<usize>, usize, f32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut labels = Vec::new();
        let mut degraded = 0usize;
        let mut correct = 0usize;
        for i in 0..test.len() {
            let x = test.example(i).unwrap();
            let report = dcn.try_classify_bounded(&x, &mut rng, &budget).unwrap();
            if report.degraded {
                degraded += 1;
                assert_eq!(
                    report.base_passes,
                    1 + 10,
                    "virtual deadline must truncate at the same vote index"
                );
            }
            if report.label == test.labels()[i] {
                correct += 1;
            }
            labels.push(report.label);
        }
        (labels, degraded, correct as f32 / test.len() as f32)
    };
    let (labels_a, degraded_a, acc_a) = run(77);
    let (labels_b, degraded_b, _) = run(77);
    dcn_fault::set_plan(None);

    assert_eq!(labels_a, labels_b, "degraded serving must be deterministic");
    assert_eq!(degraded_a, degraded_b);
    assert!(
        acc_a >= 0.8,
        "benign accuracy under degradation too low: {acc_a}"
    );

    // Injection off + unbounded budget ≡ the legacy unbounded path.
    let x = test.example(3).unwrap();
    let mut rng_a = StdRng::seed_from_u64(9);
    let mut rng_b = StdRng::seed_from_u64(9);
    let legacy = dcn.classify(&x, &mut rng_a).unwrap();
    let report = dcn
        .classify_bounded(&x, &mut rng_b, &VoteBudget::unbounded())
        .unwrap();
    assert_eq!(report.label, legacy);
    assert!(!report.degraded);
}

#[test]
fn assembled_dcn_round_trips_through_json() {
    let (net, _train, test, mut rng) = trained_setup(11);
    let seeds: Vec<Tensor> = (0..4).map(|i| test.example(i).unwrap()).collect();
    let detector = Detector::train_against(
        &net,
        &seeds,
        &CwL2::new(0.0),
        &DetectorConfig::default(),
        &mut rng,
    )
    .unwrap();
    let dcn = Dcn::new(net, detector, Corrector::new(0.15, 50).unwrap());

    let json = serde_json::to_string(&dcn).unwrap();
    let back: Dcn = serde_json::from_str(&json).unwrap();
    assert_eq!(dcn, back);

    // The deserialized defense behaves identically (same rng stream).
    let x = test.example(5).unwrap();
    let a = dcn.classify(&x, &mut StdRng::seed_from_u64(3)).unwrap();
    let b = back.classify(&x, &mut StdRng::seed_from_u64(3)).unwrap();
    assert_eq!(a, b);
    assert_eq!(dcn.name(), "DCN");
}
