//! Serving-engine integration tests, over real TCP sockets:
//!
//! * **Determinism** — N concurrent clients receive answers bitwise
//!   identical to serial [`Dcn::try_classify_bounded`] calls with the same
//!   per-request seeds, however the batcher interleaved them.
//! * **Isolation** — a client stalled mid-frame cannot stall anyone else,
//!   and under injected per-vote latency a deadline budget still truncates
//!   at the same deterministic point as a serial call.
//! * **Backpressure** — with the batcher paused, admission control walks
//!   the documented QoS ladder: full service below the shed watermark,
//!   degraded base prediction up to capacity, exit-code-6 `Overloaded`
//!   rejection beyond — never a silent full vote.
//!
//! Every test takes the shared plan lock: the fault plan and the obs
//! toggle are process globals, and servers must not observe a plan
//! installed by a neighboring test.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Barrier, Mutex, PoisonError};
use std::time::Duration;

use dcn_core::{BatchRequest, Dcn, DcnReport, DcnVerdict, VoteBudget};
use dcn_fault::FaultPlan;
use dcn_serve::bench::{demo_dcn, demo_inputs};
use dcn_serve::{Client, Request, Response, Server, ServerConfig, WireMode};
use dcn_tensor::Tensor;

static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Installs `plan` for the duration of `f`, serialized against every other
/// test in this binary (the plan is process-global).
fn with_plan<T>(plan: Option<FaultPlan>, f: impl FnOnce() -> T) -> T {
    let _guard = PLAN_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    dcn_fault::set_plan(plan);
    let out = f();
    dcn_fault::set_plan(None);
    out
}

fn start_server(dcn: Arc<Dcn>, config: ServerConfig) -> Server {
    Server::start(dcn, config).expect("server start")
}

fn serial_report(dcn: &Dcn, req: &Request) -> DcnReport {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(req.seed);
    dcn.try_classify_bounded(&req.x, &mut rng, &req.budget)
        .expect("serial classify")
}

fn assert_matches_serial(dcn: &Dcn, req: &Request, resp: &Response) {
    let expected = serial_report(dcn, req);
    match resp {
        Response::Ok(r) => {
            assert_eq!(r.id, req.id);
            assert_eq!(r.label, expected.label, "label for request {}", req.id);
            assert_eq!(r.verdict, expected.verdict, "verdict for request {}", req.id);
            assert_eq!(
                r.base_passes, expected.base_passes,
                "base_passes for request {}",
                req.id
            );
            assert_eq!(
                r.degraded, expected.degraded,
                "degraded flag for request {}",
                req.id
            );
            assert!(!r.shed, "full-service request {} must not be shed", req.id);
        }
        Response::Err(e) => panic!("request {} failed: code {} {}", req.id, e.code, e.msg),
    }
}

/// The canonical lock-acquisition order from `ci/lint/lock_order.txt` —
/// the same file the static `lock-order` rule enforces.
fn canonical_lock_order() -> Vec<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ci/lint/lock_order.txt");
    std::fs::read_to_string(path)
        .expect("canonical lock-order file")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Asserts the runtime witness's observed acquisition DAG is consistent
/// with the canonical order: every site declared, every edge forward.
fn assert_witness_matches_canon(min_sites: usize) {
    if !dcn_obs::ordered::witness_compiled() {
        return;
    }
    let canon = canonical_lock_order();
    let sites = dcn_obs::ordered::witness_sites();
    assert!(
        sites.len() >= min_sites,
        "witness saw {} sites, expected at least {min_sites}: {sites:?}",
        sites.len()
    );
    for site in &sites {
        assert!(
            canon.contains(site),
            "witnessed site {site:?} is not declared in ci/lint/lock_order.txt"
        );
    }
    for (from, to) in dcn_obs::ordered::witness_edges() {
        let pf = canon.iter().position(|s| *s == from);
        let pt = canon.iter().position(|s| *s == to);
        assert!(
            pf < pt,
            "observed acquisition {from:?} -> {to:?} runs against the canonical order"
        );
    }
}

/// An input the detector flags (low-margin logits), found by shrinking a
/// blob point toward the box center until the serial verdict is Corrected.
fn flagged_input(dcn: &Dcn) -> Tensor {
    let inputs = demo_inputs(30, 11).expect("demo inputs");
    for x in &inputs {
        for scale in [1.0f32, 0.5, 0.25, 0.1, 0.05, 0.0] {
            let scaled: Vec<f32> = x.data().iter().map(|&v| v * scale).collect();
            let t = Tensor::from_vec(x.shape().to_vec(), scaled).expect("scaled input");
            let report = serial_report(
                dcn,
                &Request::new(0, 7, t.clone()),
            );
            if report.verdict == DcnVerdict::Corrected {
                return t;
            }
        }
    }
    panic!("no input in the demo pool triggers the detector");
}

#[test]
fn concurrent_clients_get_bitwise_serial_answers() {
    with_plan(None, || {
        for mode in [WireMode::Binary, WireMode::Json] {
            let dcn = Arc::new(demo_dcn(11, 24).expect("demo dcn"));
            let server = start_server(
                Arc::clone(&dcn),
                ServerConfig {
                    mode,
                    max_batch: 4,
                    ..ServerConfig::default()
                },
            );
            let addr = server.addr().to_string();
            let inputs = demo_inputs(30, 11).expect("demo inputs");

            const CLIENTS: usize = 8;
            const PER_CLIENT: usize = 6;
            let barrier = Arc::new(Barrier::new(CLIENTS));
            let mut handles = Vec::new();
            for c in 0..CLIENTS {
                let addr = addr.clone();
                let barrier = Arc::clone(&barrier);
                let inputs = inputs.clone();
                handles.push(std::thread::spawn(move || {
                    let mut client = Client::connect(&addr, mode).expect("connect");
                    barrier.wait();
                    let mut exchanges = Vec::with_capacity(PER_CLIENT);
                    for i in 0..PER_CLIENT {
                        let global = (c * PER_CLIENT + i) as u64;
                        let req = Request::new(
                            global + 1,
                            1000 + global,
                            inputs[global as usize % inputs.len()].clone(),
                        );
                        let resp = client.classify(&req).expect("classify");
                        exchanges.push((req, resp));
                    }
                    exchanges
                }));
            }
            let mut corrected = 0usize;
            for h in handles {
                for (req, resp) in h.join().expect("client thread") {
                    if matches!(&resp, Response::Ok(r) if r.verdict == DcnVerdict::Corrected) {
                        corrected += 1;
                    }
                    assert_matches_serial(&dcn, &req, &resp);
                }
            }
            // The fixture must exercise the corrector path, or this test
            // would only prove the trivial passthrough case.
            assert!(
                corrected > 0,
                "no request took the corrector path ({mode:?})"
            );
            server.shutdown();
        }
    });
}

#[test]
fn bounded_budgets_ride_the_wire_and_match_serial() {
    with_plan(None, || {
        let dcn = Arc::new(demo_dcn(11, 24).expect("demo dcn"));
        let server = start_server(Arc::clone(&dcn), ServerConfig::default());
        let flagged = flagged_input(&dcn);
        let mut client =
            Client::connect(&server.addr().to_string(), WireMode::Binary).expect("connect");
        // A vote cap below m: the answer must be the serially-truncated
        // vote, flagged degraded.
        let req = Request {
            id: 31,
            seed: 555,
            budget: VoteBudget {
                max_votes: Some(8),
                deadline: None,
                min_quorum: 1,
            },
            trace: 0,
            x: flagged.clone(),
        };
        let resp = client.classify(&req).expect("capped classify");
        assert_matches_serial(&dcn, &req, &resp);
        match &resp {
            Response::Ok(r) => {
                assert_eq!(r.verdict, DcnVerdict::Corrected);
                assert!(r.degraded, "a capped vote must be reported degraded");
                assert_eq!(r.base_passes, 1 + 8, "exactly the capped vote count");
            }
            Response::Err(e) => panic!("capped classify failed: {}", e.msg),
        }
        // A quorum no truncated vote can meet: base fallback, degraded.
        let req = Request {
            id: 32,
            seed: 556,
            budget: VoteBudget {
                max_votes: Some(2),
                deadline: None,
                min_quorum: 5,
            },
            trace: 0,
            x: flagged,
        };
        let resp = client.classify(&req).expect("quorum classify");
        assert_matches_serial(&dcn, &req, &resp);
        server.shutdown();
    });
}

#[test]
fn stalled_client_cannot_stall_the_rest_past_their_deadline() {
    // Per-vote virtual latency: a deadline-bounded vote truncates at a
    // deterministic count, and wall time stays fast.
    let plan = FaultPlan {
        latency_ns: 1_000_000, // 1 virtual ms per vote
        ..FaultPlan::default()
    };
    with_plan(Some(plan), || {
        let dcn = Arc::new(demo_dcn(11, 24).expect("demo dcn"));
        let server = start_server(Arc::clone(&dcn), ServerConfig::default());
        let addr = server.addr().to_string();
        let flagged = flagged_input(&dcn);

        // The saboteur: sends half a length prefix and then goes silent,
        // holding its connection (and its reader thread) hostage.
        let mut stalled = TcpStream::connect(&addr).expect("stalled connect");
        stalled.write_all(&[0x10, 0x00]).expect("partial prefix");

        // The victim: deadline-bounded requests on a separate connection.
        // With one reader thread per connection they must keep flowing.
        let mut client = Client::connect(&addr, WireMode::Binary).expect("connect");
        let started = std::time::Instant::now();
        for i in 0..4u64 {
            let req = Request {
                id: 100 + i,
                seed: 9000 + i,
                budget: VoteBudget {
                    max_votes: None,
                    deadline: Some(Duration::from_millis(10)),
                    min_quorum: 1,
                },
                trace: 0,
                x: flagged.clone(),
            };
            let resp = client.classify(&req).expect("victim classify");
            assert_matches_serial(&dcn, &req, &resp);
            match &resp {
                Response::Ok(r) => {
                    assert_eq!(r.verdict, DcnVerdict::Corrected);
                    assert!(r.degraded, "deadline truncation must be reported");
                    // 1 virtual ms per vote against a 10 ms deadline, checked
                    // every 8-vote chunk: exactly 16 of 24 votes are cast.
                    assert_eq!(r.base_passes, 1 + 16, "deterministic truncation");
                }
                Response::Err(e) => panic!("victim request failed: {}", e.msg),
            }
        }
        // The latency is virtual and the stalled client holds no shared
        // lock: four round trips must complete promptly in wall time.
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "victim requests took {:?} — a stalled peer leaked into the serving path",
            started.elapsed()
        );
        drop(stalled);
        server.shutdown();
    });
}

#[test]
fn backpressure_walks_the_qos_ladder() {
    with_plan(None, || {
        // This leg runs under the runtime lock-order witness: the
        // reader/batcher/writer threads exercise every serving-plane lock,
        // and the observed acquisition DAG must match the canonical file
        // the static `lock-order` rule enforces.
        dcn_obs::ordered::reset_witness();
        dcn_obs::ordered::set_witness_enabled(true);
        let dcn = Arc::new(demo_dcn(11, 24).expect("demo dcn"));
        let server = start_server(
            Arc::clone(&dcn),
            ServerConfig {
                max_batch: 4,
                queue_capacity: 4,
                shed_mark: 2,
                ..ServerConfig::default()
            },
        );
        let inputs = demo_inputs(30, 11).expect("demo inputs");
        // Freeze the batcher: admission control keeps running, so queue
        // depth — and each request's fate — is exact.
        server.set_paused(true);

        let mut client =
            Client::connect(&server.addr().to_string(), WireMode::Binary).expect("connect");
        let requests: Vec<Request> = (0..6u64)
            .map(|i| Request::new(i + 1, 2000 + i, inputs[i as usize].clone()))
            .collect();
        for req in &requests {
            client.send(req).expect("pipelined send");
        }

        // Requests 1-2 are full service, 3-4 shed, 5-6 rejected.
        let mut waited = 0;
        while server.queue_len() < 4 && waited < 200 {
            std::thread::sleep(Duration::from_millis(10));
            waited += 1;
        }
        assert_eq!(server.queue_len(), 4, "queue must hold exactly capacity");

        // Rejections are written immediately by the reader thread — the
        // batcher is still paused.
        for _ in 0..2 {
            match client.recv().expect("rejection frame") {
                Response::Err(e) => {
                    assert!(e.id == 5 || e.id == 6, "rejected id {}", e.id);
                    assert_eq!(e.code, 6, "Overloaded exit code");
                    assert!(
                        e.msg.contains("overloaded"),
                        "documented error text, got {:?}",
                        e.msg
                    );
                }
                Response::Ok(r) => panic!("request {} served while paused", r.id),
            }
        }

        server.set_paused(false);
        let mut served = Vec::new();
        for _ in 0..4 {
            match client.recv().expect("served frame") {
                Response::Ok(r) => served.push(r),
                Response::Err(e) => panic!("request {} failed: {}", e.id, e.msg),
            }
        }
        served.sort_by_key(|r| r.id);
        assert_eq!(
            served.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        for r in &served {
            let req = &requests[(r.id - 1) as usize];
            if r.id <= 2 {
                // Below the watermark: bitwise-identical full service.
                assert!(!r.shed);
                assert_matches_serial(&dcn, req, &Response::Ok(r.clone()));
            } else {
                // Shed: the base prediction, explicitly degraded — verified
                // against the library's own shed path, never a silent vote.
                assert!(r.shed, "request {} must be marked shed", r.id);
                assert!(r.degraded, "shed answers are degraded by definition");
                assert_eq!(r.verdict, DcnVerdict::PassedThrough);
                assert_eq!(r.base_passes, 1, "shed must cost one forward pass");
                let expected = dcn
                    .try_classify_batch(&[BatchRequest {
                        x: req.x.clone(),
                        seed: req.seed,
                        budget: req.budget,
                        shed: true,
                        trace: 0,
                    }])
                    .remove(0)
                    .expect("serial shed report");
                assert_eq!(r.label, expected.label, "shed label is the base argmax");
            }
        }
        server.shutdown();
        // All three serving locks were exercised: queue admission, the
        // connection table, and at least one per-connection write half.
        assert_witness_matches_canon(3);
        dcn_obs::ordered::clear_witness_override();
    });
}

#[test]
fn server_shutdown_answers_queued_requests_then_closes() {
    with_plan(None, || {
        let dcn = Arc::new(demo_dcn(11, 24).expect("demo dcn"));
        let server = start_server(Arc::clone(&dcn), ServerConfig::default());
        let inputs = demo_inputs(5, 11).expect("demo inputs");
        let mut client =
            Client::connect(&server.addr().to_string(), WireMode::Binary).expect("connect");
        let req = Request::new(1, 77, inputs[0].clone());
        let resp = client.classify(&req).expect("classify before shutdown");
        assert_matches_serial(&dcn, &req, &resp);
        server.shutdown();
        // The connection is closed afterwards: the next exchange fails
        // rather than hanging.
        let after = Request::new(2, 78, inputs[1].clone());
        let outcome = client.classify(&after);
        assert!(outcome.is_err(), "server accepted work after shutdown");
    });
}
