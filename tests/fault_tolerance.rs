//! Integration tests for the fault-injection harness: each injector class
//! is driven against the real pipeline and the degradation ladder is
//! checked end to end — typed errors instead of panics, torn writes that
//! never corrupt the destination, crash-and-resume training that matches an
//! uninterrupted run bitwise, and bounded votes that degrade rather than
//! fail.
//!
//! The fault plan is process-global, so every test that installs one runs
//! under a shared lock and clears the plan before releasing it.

use std::sync::Mutex;

use dcn_core::{models, Corrector, Dcn, DcnError, DcnVerdict, Detector, DetectorConfig, VoteBudget};
use dcn_data::Dataset;
use dcn_fault::FaultPlan;
use dcn_nn::{Adam, Network, NnError, TrainCheckpoint, TrainConfig, Trainer};
use dcn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with `plan` installed, holding the global lock so concurrent
/// tests never see each other's plans; always clears the plan afterwards.
fn with_plan<T>(plan: Option<FaultPlan>, f: impl FnOnce() -> T) -> T {
    let _guard = PLAN_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    dcn_fault::set_plan(plan);
    let out = f();
    dcn_fault::set_plan(None);
    out
}

/// Three separable Gaussian blobs in a 4-dim box (same family as the
/// end-to-end suite, smaller because these tests train repeatedly).
fn blobs(n: usize, rng: &mut StdRng) -> Dataset {
    const CENTERS: [[f32; 4]; 3] = [
        [-0.3, -0.3, 0.25, 0.0],
        [0.3, -0.3, -0.25, 0.1],
        [0.0, 0.35, 0.0, -0.3],
    ];
    let mut data = Vec::with_capacity(n * 4);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 3;
        for &c in &CENTERS[class] {
            let v: f32 = c + rng.gen_range(-0.06..0.06);
            data.push(v.clamp(-0.5, 0.5));
        }
        labels.push(class);
    }
    let images = Tensor::from_vec(vec![n, 4], data).unwrap();
    Dataset::new(images, labels, 3).unwrap()
}

/// A tiny trained base network plus a detector fit on synthetic logits —
/// detector accuracy is irrelevant here (the injectors force each branch),
/// so no attack generation is needed.
fn tiny_dcn(seed: u64) -> (Dcn, Dataset, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = blobs(120, &mut rng);
    let test = blobs(30, &mut rng);
    let net = models::mlp(4, 12, 3, &mut rng).unwrap();
    let net = models::train_classifier(net, &train, 25, 0.01, &mut rng).unwrap();
    let benign: Vec<Tensor> = (0..6)
        .map(|i| {
            let mut v = [-2.0f32; 3];
            v[i % 3] = 6.0 + 0.1 * i as f32;
            Tensor::from_slice(&v)
        })
        .collect();
    let adversarial: Vec<Tensor> = (0..6)
        .map(|i| {
            let base = 1.0 + 0.05 * i as f32;
            Tensor::from_slice(&[base, base - 0.1, base - 0.2])
        })
        .collect();
    let detector =
        Detector::train_from_logits(&benign, &adversarial, &DetectorConfig::default(), &mut rng)
            .unwrap();
    let dcn = Dcn::new(net, detector, Corrector::new(0.12, 24).unwrap());
    (dcn, test, rng)
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dcn_fault_tolerance_it");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn injected_io_errors_surface_as_typed_errors() {
    let mut rng = StdRng::seed_from_u64(3);
    let net = models::mlp(4, 8, 3, &mut rng).unwrap();
    let path = scratch("io_inject.json");
    net.save(&path).unwrap();

    let plan = FaultPlan {
        io_error_rate: 1.0,
        ..FaultPlan::default()
    };
    with_plan(Some(plan), || {
        let err = Network::load(&path).unwrap_err();
        assert!(matches!(err, NnError::Io { .. }), "got {err:?}");
        // The unified taxonomy classifies it as an IO failure: exit code 3.
        assert_eq!(DcnError::from(err).exit_code(), 3);
        let err = net.save(scratch("io_inject_2.json")).unwrap_err();
        assert!(matches!(err, NnError::Io { .. }), "got {err:?}");
    });

    // With the plan cleared, the same file loads fine.
    assert_eq!(Network::load(&path).unwrap(), net);
}

#[test]
fn nan_injection_fails_closed_through_the_corrector() {
    let (dcn, test, mut rng) = tiny_dcn(17);
    let x = test.example(0).unwrap();

    let plan = FaultPlan {
        nan_rate: 1.0,
        ..FaultPlan::default()
    };
    with_plan(Some(plan), || {
        // Every single-example logit vector is poisoned, so the detector
        // path fails closed: the query routes to the corrector instead of
        // trusting garbage logits.
        let report = dcn.classify_with_report(&x, &mut rng).unwrap();
        assert_eq!(report.verdict, DcnVerdict::Corrected);
        assert!(report.label < 3);
        // The corrector votes on clean batch passes, so the recovered label
        // is the true class of this benign example.
        assert_eq!(report.label, test.labels()[0]);

        // The detector itself refuses non-finite logits outright.
        let poisoned = Tensor::from_slice(&[f32::NAN, 0.1, 0.2]);
        let err = dcn.detector().is_adversarial(&poisoned).unwrap_err();
        assert_eq!(DcnError::from(err).exit_code(), 5);
    });
}

#[test]
fn forced_vote_budget_degrades_instead_of_failing() {
    let (dcn, test, mut rng) = tiny_dcn(19);
    let x = test.example(1).unwrap();

    // NaN injection forces the corrected path; the budget injector then
    // caps the vote at 3 of the corrector's 24 samples.
    let plan = FaultPlan {
        nan_rate: 1.0,
        vote_budget: Some(3),
        ..FaultPlan::default()
    };
    with_plan(Some(plan), || {
        let report = dcn.classify_with_report(&x, &mut rng).unwrap();
        assert_eq!(report.verdict, DcnVerdict::Corrected);
        assert!(report.degraded, "truncated vote must be marked degraded");
        assert_eq!(report.base_passes, 1 + 3);

        // Below quorum the ladder drops one more rung: the base network's
        // prediction is served rather than a 3-vote mode.
        let budget = VoteBudget {
            max_votes: None,
            deadline: None,
            min_quorum: 5,
        };
        let report = dcn.classify_bounded(&x, &mut rng, &budget).unwrap();
        assert!(report.degraded);
        assert!(report.label < 3);
    });
}

#[test]
fn short_writes_never_tear_the_destination() {
    let mut rng = StdRng::seed_from_u64(23);
    let net = models::mlp(4, 8, 3, &mut rng).unwrap();
    let v1 = TrainCheckpoint {
        epoch: 1,
        epoch_losses: vec![0.9],
        net: net.clone(),
        optimizer: String::new(),
    };
    let path = scratch("torn.json");
    v1.save(&path).unwrap();

    let plan = FaultPlan {
        short_write: Some(10),
        ..FaultPlan::default()
    };
    with_plan(Some(plan), || {
        let v2 = TrainCheckpoint {
            epoch: 2,
            epoch_losses: vec![0.9, 0.7],
            net: net.clone(),
            optimizer: String::new(),
        };
        let err = v2.save(&path).unwrap_err();
        assert!(matches!(err, NnError::Io { .. }), "got {err:?}");
    });

    // The torn write died in the staging file; the destination still holds
    // the complete, CRC-valid previous checkpoint.
    let back = TrainCheckpoint::load(&path).unwrap();
    assert_eq!(back.epoch, 1);
    assert_eq!(back, v1);
}

#[test]
fn aborted_training_resumes_bitwise() {
    let mut rng = StdRng::seed_from_u64(29);
    let data = blobs(90, &mut rng);
    let fresh = models::mlp(4, 10, 3, &mut rng).unwrap();
    let config = TrainConfig {
        epochs: 4,
        batch_size: 16,
        ..Default::default()
    };
    let ckpt = scratch("resume.json");
    let _ = std::fs::remove_file(&ckpt);

    // Uninterrupted reference run.
    let mut full_net = fresh.clone();
    Trainer::new(config.clone())
        .fit_resumable(
            &mut full_net,
            data.images(),
            data.labels(),
            &mut Adam::new(0.01),
            71,
            scratch("reference.json"),
        )
        .unwrap();

    // Same run, crashed by the abort injector after 2 of 4 epochs…
    let mut crashed_net = fresh.clone();
    let plan = FaultPlan {
        abort_after_epochs: Some(2),
        ..FaultPlan::default()
    };
    with_plan(Some(plan), || {
        let err = Trainer::new(config.clone())
            .fit_resumable(
                &mut crashed_net,
                data.images(),
                data.labels(),
                &mut Adam::new(0.01),
                71,
                &ckpt,
            )
            .unwrap_err();
        assert!(matches!(err, NnError::Io { .. }), "got {err:?}");
    });

    // …then resumed from the checkpoint with a fresh process state.
    let mut resumed_net = fresh.clone();
    let report = Trainer::new(config)
        .fit_resumable(
            &mut resumed_net,
            data.images(),
            data.labels(),
            &mut Adam::new(0.01),
            71,
            &ckpt,
        )
        .unwrap();
    assert_eq!(report.epoch_losses.len(), 4);
    assert_eq!(
        resumed_net, full_net,
        "resumed weights must match the uninterrupted run bitwise"
    );
}

#[test]
fn disabled_injection_is_bitwise_inert() {
    let (dcn, test, _) = tiny_dcn(31);
    let x = test.example(2).unwrap();
    let corrector = dcn.corrector();

    with_plan(None, || {
        // The bounded vote with an unbounded budget must delegate to the
        // legacy path: identical mode, counts, and rng stream consumption.
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let (mode, counts) = corrector.vote_counts(dcn.base(), &x, &mut rng_a).unwrap();
        let bounded = corrector
            .vote_counts_bounded(dcn.base(), &x, &mut rng_b, &VoteBudget::unbounded())
            .unwrap();
        assert_eq!(bounded.mode, mode);
        assert_eq!(bounded.counts, counts);
        assert_eq!(bounded.votes_cast, corrector.samples());
        assert!(!bounded.truncated);
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "rng streams diverged");

        // And the full pipeline agrees with itself across both entry points.
        let mut rng_a = StdRng::seed_from_u64(6);
        let mut rng_b = StdRng::seed_from_u64(6);
        let legacy = dcn.classify(&x, &mut rng_a).unwrap();
        let report = dcn
            .classify_bounded(&x, &mut rng_b, &VoteBudget::unbounded())
            .unwrap();
        assert_eq!(report.label, legacy);
        assert!(!report.degraded);
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "rng streams diverged");
    });
}
