//! Cross-attack pipeline invariants (the paper's Table 1 attack suite):
//! every attack produces box-respecting, label-flipping adversarial
//! examples against a trained network, and the evaluation drivers report
//! consistent statistics.

use dcn_attacks::{
    evaluate_native_untargeted, evaluate_targeted, evaluate_untargeted, CwL2, DeepFool, Fgsm,
    Igsm, Jsma, TargetedAttack, BOX_MAX, BOX_MIN,
};
use dcn_core::models;
use dcn_data::Dataset;
use dcn_nn::Network;
use dcn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Three Gaussian blobs in a 4-dim `[-0.5, 0.5]` box (same task family as
/// `end_to_end.rs`, regenerated here because integration tests are separate
/// binaries).
fn blobs(n: usize, rng: &mut StdRng) -> Dataset {
    const CENTERS: [[f32; 4]; 3] = [
        [-0.3, -0.3, 0.25, 0.0],
        [0.3, -0.3, -0.25, 0.1],
        [0.0, 0.35, 0.0, -0.3],
    ];
    let mut data = Vec::with_capacity(n * 4);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 3;
        for &c in &CENTERS[class] {
            let v: f32 = c + rng.gen_range(-0.06..0.06);
            data.push(v.clamp(-0.5, 0.5));
        }
        labels.push(class);
    }
    let images = Tensor::from_vec(vec![n, 4], data).unwrap();
    Dataset::new(images, labels, 3).unwrap()
}

fn trained_net() -> (Network, Vec<Tensor>) {
    let mut rng = StdRng::seed_from_u64(41);
    let train = blobs(240, &mut rng);
    let test = blobs(24, &mut rng);
    let net = models::mlp(4, 16, 3, &mut rng).unwrap();
    let net = models::train_classifier(net, &train, 40, 0.01, &mut rng).unwrap();
    let seeds = (0..6).map(|i| test.example(i).unwrap()).collect();
    (net, seeds)
}

fn in_box(t: &Tensor) -> bool {
    t.data().iter().all(|&v| (BOX_MIN..=BOX_MAX).contains(&v))
}

#[test]
fn targeted_attacks_respect_the_box_and_hit_their_target() {
    let (net, seeds) = trained_net();
    let attacks: Vec<Box<dyn TargetedAttack>> = vec![
        Box::new(Fgsm::new(0.25)),
        Box::new(Igsm::new(0.25, 0.02, 30)),
        Box::new(CwL2::new(0.0)),
        Box::new(Jsma::new(0.4, 0.5)),
    ];
    for attack in &attacks {
        let (stats, examples) = evaluate_targeted(attack.as_ref(), &net, &seeds).unwrap();
        assert_eq!(stats.attack, attack.name());
        assert_eq!(stats.attempts, seeds.len() * 2, "{}", attack.name());
        assert_eq!(stats.successes, examples.len(), "{}", attack.name());
        for ex in &examples {
            assert!(in_box(&ex.adversarial), "{} left the box", attack.name());
            assert_eq!(
                Some(ex.adversarial_label),
                ex.target,
                "{} recorded a non-target success",
                attack.name()
            );
            assert_ne!(ex.adversarial_label, ex.original_label);
            assert!(ex.dist_l2 > 0.0 && ex.dist_linf > 0.0 && ex.dist_l0 > 0.0);
        }
    }
}

#[test]
fn untargeted_reduction_keeps_least_distorted_success() {
    let (net, seeds) = trained_net();
    let attack = CwL2::new(0.0);
    let (t_stats, t_examples) = evaluate_targeted(&attack, &net, &seeds).unwrap();
    let (u_stats, u_examples) = evaluate_untargeted(&attack, &net, &seeds).unwrap();

    // One attempt per seed in the untargeted reduction.
    assert_eq!(u_stats.attempts, seeds.len());
    assert!(u_stats.successes <= u_stats.attempts);
    // CW-L2 on this easy task fools the net from nearly every seed.
    assert!(
        u_stats.successes >= seeds.len() / 2,
        "CW-L2 untargeted succeeded only {}/{}",
        u_stats.successes,
        u_stats.attempts
    );
    for ex in &u_examples {
        assert_eq!(ex.target, None);
        assert_ne!(ex.adversarial_label, ex.original_label);
    }
    // The reduction keeps the minimum over targets, so its mean distortion
    // cannot exceed the all-targets mean.
    if t_stats.successes > 0 && u_stats.successes > 0 {
        assert!(u_stats.mean_l2 <= t_stats.mean_l2 + 1e-4);
    }
    let _ = t_examples;
}

#[test]
fn native_untargeted_attack_reports_consistent_stats() {
    let (net, seeds) = trained_net();
    let attack = DeepFool::new(50, 0.02);
    let (stats, examples) = evaluate_native_untargeted(&attack, &net, &seeds).unwrap();
    assert_eq!(stats.attack, "DeepFool");
    assert_eq!(stats.attempts, seeds.len());
    assert_eq!(stats.successes, examples.len());
    for ex in &examples {
        assert!(in_box(&ex.adversarial));
        assert_eq!(ex.target, None);
        assert_ne!(ex.adversarial_label, ex.original_label);
    }
    if !examples.is_empty() {
        assert!(stats.mean_l2 > 0.0);
        let rate = stats.success_rate();
        assert!((0.0..=1.0).contains(&rate));
    }
}

#[test]
fn attack_stats_success_rate_matches_counts() {
    let (net, seeds) = trained_net();
    let (stats, examples) = evaluate_untargeted(&Fgsm::new(0.25), &net, &seeds).unwrap();
    let expected = examples.len() as f32 / seeds.len() as f32;
    assert!((stats.success_rate() - expected).abs() < 1e-6);
}
