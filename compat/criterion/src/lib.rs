//! Std-only stand-in for the subset of `criterion` this workspace uses.
//!
//! No statistics engine: each benchmark is timed with a short warm-up
//! followed by `sample_size` measured iterations (wall-clock capped), the
//! mean ns/iter is printed, and all results of a run are appended to
//! `results/BENCH_<bin>.json` next to the workspace's experiment outputs so
//! benchmark history is diffable run-to-run.

use std::time::{Duration, Instant};

/// Upper bound on measured wall-clock per benchmark, so heavyweight
/// benches (CW attacks run thousands of forward passes) stay bounded.
const TIME_CAP: Duration = Duration::from_secs(5);

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Record {
    /// `group/name` benchmark id.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of measured iterations.
    pub iters: u64,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Mirrors upstream's CLI hookup; the shim has no CLI and returns
    /// `self` unchanged.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let record = run_bench(name, 20, f);
        self.records.push(record);
        self
    }

    /// All measurements recorded so far.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Records an externally measured scalar (allocation counts, speedup
    /// ratios) alongside the timing records so it lands in the same
    /// `BENCH_<label>.json`. The value goes in the `mean_ns` column with
    /// `iters = 0` marking it as a non-timing metric.
    pub fn record_metric(&mut self, id: impl Into<String>, value: f64) {
        self.records.push(Record {
            id: id.into(),
            mean_ns: value,
            iters: 0,
        });
    }

    /// Writes every recorded measurement to
    /// `results/BENCH_<label>.json` (relative to the workspace root when
    /// run under cargo) and prints a summary table.
    pub fn finalize(&self, label: &str) {
        if self.records.is_empty() {
            return;
        }
        let mut json = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                json.push_str(",\n");
            }
            json.push_str(&format!(
                "  {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}",
                r.id, r.mean_ns, r.iters
            ));
        }
        json.push_str("\n]\n");
        if let Some(dir) = results_dir() {
            let path = dir.join(format!("BENCH_{label}.json"));
            if std::fs::create_dir_all(&dir)
                .and_then(|()| std::fs::write(&path, &json))
                .is_ok()
            {
                eprintln!("wrote {}", path.display());
            }
        }
    }
}

/// Locates `<workspace>/results` from the bench binary's environment.
fn results_dir() -> Option<std::path::PathBuf> {
    // CARGO_MANIFEST_DIR points at the member crate (e.g. crates/bench);
    // the workspace root is two levels up.
    let manifest = std::env::var_os("CARGO_MANIFEST_DIR")?;
    let mut p = std::path::PathBuf::from(manifest);
    p.pop();
    p.pop();
    Some(p.join("results"))
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Mirrors upstream's measurement-time knob; the shim uses a fixed
    /// wall-clock cap instead and ignores the requested duration.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a closure under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        let record = run_bench(&full, self.sample_size, f);
        self.parent.records.push(record);
        self
    }

    /// Benchmarks a closure parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let record = run_bench(&full, self.sample_size, |b| f(b, input));
        self.parent.records.push(record);
        self
    }

    /// Ends the group (bookkeeping no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }

    /// Id that is just the parameter (for single-function sweeps).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Anything convertible into a benchmark id string.
pub trait IntoBenchmarkId {
    /// The id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmarked closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`: a short warm-up, then up to `sample_size` measured
    /// iterations (wall-clock capped).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (also primes caches/allocator).
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.sample_size as u64 {
            black_box(f());
            iters += 1;
            if start.elapsed() > TIME_CAP {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) -> Record {
    let mut b = Bencher {
        sample_size,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean_ns = if b.iters == 0 {
        0.0
    } else {
        b.total.as_nanos() as f64 / b.iters as f64
    };
    eprintln!("bench {id:<40} {mean_ns:>14.1} ns/iter ({} iters)", b.iters);
    Record {
        id: id.to_string(),
        mean_ns,
        iters: b.iters,
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.finalize(stringify!($group));
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
            criterion.finalize(stringify!($group));
        }
    };
}

/// Declares the bench binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("trivial", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert_eq!(c.records().len(), 2);
        assert!(c.records().iter().all(|r| r.iters > 0));
        assert_eq!(c.records()[0].id, "g/trivial");
        assert_eq!(c.records()[1].id, "g/3");
    }
}
