//! Std-only stand-in for the subset of `rand_distr` 0.4 this workspace
//! uses: [`Distribution`], [`Normal`] and [`Uniform`] over `f32`.
//!
//! Normal sampling uses Box–Muller rather than upstream's ziggurat, so the
//! sample *stream* differs from upstream for a given seed; the workspace
//! only relies on seeded determinism, which is preserved.

use rand::{Rng, RngCore};

/// Types that produce samples of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// Standard deviation was negative or not finite.
    BadVariance,
    /// Mean was not finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution `N(mean, std²)` over `f32`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f32,
    std: f32,
}

impl Normal {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] if `std` is negative or either parameter is
    /// non-finite.
    pub fn new(mean: f32, std: f32) -> Result<Self, NormalError> {
        if !std.is_finite() || std < 0.0 {
            return Err(NormalError::BadVariance);
        }
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        Ok(Normal { mean, std })
    }
}

impl Distribution<f32> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // Box–Muller; one draw per call keeps the distribution stateless.
        // u1 is nudged away from zero so ln(u1) is finite.
        let u1: f64 = f64::max(rng.gen::<f64>(), 1e-300);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std * z as f32
    }
}

/// Uniform distribution over `[lo, hi)` for `f32`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f32,
    hi: f32,
}

impl Uniform {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite (matching
    /// upstream's contract).
    pub fn new(lo: f32, hi: f32) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "Uniform::new requires finite lo <= hi, got [{lo}, {hi})"
        );
        Uniform { lo, hi }
    }
}

impl Distribution<f32> for Uniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        self.lo + (self.hi - self.lo) * rng.gen::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let dist = Normal::new(2.0, 3.0).unwrap();
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f32::NAN).is_err());
        assert!(Normal::new(f32::INFINITY, 1.0).is_err());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(12);
        let dist = Uniform::new(-0.25, 0.75);
        for _ in 0..1000 {
            let x = dist.sample(&mut rng);
            assert!((-0.25..0.75).contains(&x));
        }
    }
}
