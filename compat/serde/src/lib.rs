//! Std-only stand-in for the subset of `serde` this workspace uses.
//!
//! The container building this repository has no access to crates.io, so
//! `serde`/`serde_derive`/`serde_json` are replaced by in-tree shims. The
//! model is deliberately simple: serialization lowers a value into a JSON
//! [`Value`] tree; deserialization lifts it back. `#[derive(Serialize,
//! Deserialize)]` is provided by the sibling `serde_derive` proc-macro and
//! follows serde's externally-tagged defaults (named structs → objects,
//! newtype structs → their inner value, unit enum variants → strings,
//! data-carrying variants → single-key objects), so JSON written by earlier
//! builds of this workspace stays readable.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree. Object keys keep insertion order so encoded output is
/// stable and diffs cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; `f32 → f64` is exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object's fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v))
    }
}

/// Deserialization error: a human-readable path-and-reason message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a required field in an object's field list.
///
/// # Errors
///
/// Returns [`DeError`] naming the missing field.
pub fn get_field<'a>(fields: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Lowers `self` into a JSON value tree.
    fn to_value(&self) -> Value;
}

/// Types that can lift themselves out of a [`Value`].
pub trait Deserialize: Sized {
    /// Lifts a value of `Self` from a JSON value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or type mismatches.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| DeError::new(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}

impl_num!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::new("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::new("expected 3-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b, c, d]) => Ok((
                A::from_value(a)?,
                B::from_value(b)?,
                C::from_value(c)?,
                D::from_value(d)?,
            )),
            _ => Err(DeError::new("expected 4-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize, E: Serialize> Serialize
    for (A, B, C, D, E)
{
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
            self.4.to_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize, E: Deserialize> Deserialize
    for (A, B, C, D, E)
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b, c, d, e]) => Ok((
                A::from_value(a)?,
                B::from_value(b)?,
                C::from_value(c)?,
                D::from_value(d)?,
                E::from_value(e)?,
            )),
            _ => Err(DeError::new("expected 5-element array")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<K: AsRef<str> + std::hash::Hash + Eq, V: Serialize> Serialize
    for std::collections::HashMap<K, V>
{
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic regardless of hasher state.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.as_ref().to_string(), v.to_value()))
            .collect();
        fields.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Obj(fields)
    }
}
impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
