//! Std-only stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`] over the shim
//! serde's [`Value`] model.
//!
//! Numbers are emitted with Rust's shortest round-trip float formatting, so
//! `f32 → JSON → f32` is exact (an `f32` widened to `f64` prints a decimal
//! string that parses back to the same `f64`, which narrows back to the
//! original `f32`).

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Encode or decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // serde_json rejects non-finite floats; emitting null matches its
        // lossy serializers and keeps the encoder total.
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        out.push_str("-0.0");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{}` on f64 is shortest-round-trip.
        out.push_str(&format!("{n}"));
    }
}

fn write_value(out: &mut String, v: &Value, pretty: bool, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_value(out, item, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
        }
    }
}

/// Encodes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors upstream's
/// signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), false, 0);
    Ok(out)
}

/// Encodes a value to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors upstream's
/// signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), true, 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("expected `null`"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("expected `true`"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("expected `false`"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':', "expected `:`")?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("malformed number"))
    }
}

/// Parses a JSON string into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Decodes a value of `T` from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch for `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    Ok(T::from_value(&parse(s)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&1.5f32).unwrap(), "1.5");
        assert_eq!(from_str::<f32>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
    }

    #[test]
    fn f32_payloads_round_trip_exactly() {
        let vals: Vec<f32> = vec![
            0.1,
            -0.3,
            1.0e-8,
            f32::MAX,
            f32::MIN_POSITIVE,
            std::f32::consts::PI,
            -0.0,
        ];
        let json = to_string(&vals).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        for (a, b) in vals.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} re-read as {b}");
        }
    }

    #[test]
    fn nested_containers_round_trip() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v: Vec<(String, f32)> = vec![("a".into(), 1.0), ("b".into(), 2.5)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(String, f32)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<f32>("not json").is_err());
        assert!(from_str::<f32>("1.5 trailing").is_err());
        assert!(from_str::<Vec<f32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_strings_survive() {
        let s = "héllo → 世界".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }
}
