//! Std-only stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The container building this repository has no access to crates.io,
//! so the external `rand` dependency is replaced by this in-tree shim
//! (see `compat/` in the workspace root).
//!
//! The generator is **not** stream-compatible with upstream `StdRng`
//! (upstream uses ChaCha12; this shim uses xoshiro256++ seeded through
//! SplitMix64). Every consumer in this workspace only relies on seeded
//! determinism — identical seeds produce identical streams run-to-run and
//! thread-count-to-thread-count — which this shim guarantees.

/// Low-level generator interface. Object safe: defenses thread randomness
/// as `&mut dyn RngCore`.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Values samplable uniformly from the generator's raw bits (the shim
/// equivalent of `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-entropy bits → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly samplable from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Ranges samplable via [`Rng::gen_range`].
///
/// Implemented as blanket impls over [`SampleUniform`] (matching upstream's
/// structure) so type inference can unify the range element type with the
/// return type before float-literal fallback kicks in.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(lo, hi, true, rng)
    }
}

macro_rules! float_uniform {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                debug_assert!(lo <= hi, "gen_range: start > end");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    };
}
float_uniform!(f32);
float_uniform!(f64);

macro_rules! int_uniform {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = if inclusive {
                    assert!(lo <= hi, "gen_range: empty integer range");
                    (hi as i128 - lo as i128) as u128 + 1
                } else {
                    assert!(lo < hi, "gen_range: empty integer range");
                    (hi as i128 - lo as i128) as u128
                };
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    };
}
int_uniform!(usize);
int_uniform!(u8);
int_uniform!(u16);
int_uniform!(u32);
int_uniform!(u64);
int_uniform!(isize);
int_uniform!(i8);
int_uniform!(i16);
int_uniform!(i32);
int_uniform!(i64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] exactly as in upstream `rand`.
pub trait Rng: RngCore {
    /// Uniform sample of a primitive type (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from an integer or float range.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generator interface.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256++.
    ///
    /// Not stream-compatible with upstream `StdRng` (ChaCha12), but a
    /// high-quality, fast, seeded generator — which is all the workspace
    /// relies on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::Rng;

    /// Slice extensions: shuffling and random choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0usize..7);
            assert!(i < 7);
            let j = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&j));
            let n = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&n));
        }
    }

    #[test]
    fn unit_floats_are_half_open() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn dyn_rng_core_objects_work() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0.0f32..1.0);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
