//! Std-only stand-in for the subset of `proptest` this workspace uses.
//!
//! The real proptest shrinks failing cases; this shim only *generates* —
//! each `proptest!` test runs [`CASES`] seeded random cases and reports the
//! first failure via a plain panic (the generated inputs are printed by the
//! assertion itself). Strategies cover what the workspace's property tests
//! use: numeric ranges, `prop::collection::vec`, tuples, `Just`, and
//! `prop_map`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases each property runs. Smaller than upstream's 256:
/// several properties in this workspace train real (small) networks per
/// case, and the tier-1 gate runs every property on every push.
pub const CASES: usize = 48;

/// Fixed base seed, so failures reproduce run-to-run.
const BASE_SEED: u64 = 0x5EED_CA5E;

/// Creates the deterministic generator backing one property's cases.
pub fn new_test_rng(test_name: &str) -> StdRng {
    // Mix the test name in so each property sees a distinct stream.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(BASE_SEED ^ h)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f32, f64, usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub mod prop {
    //! Namespace mirror of `proptest::prop`.

    pub mod collection {
        //! Collection strategies.

        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Anything usable as the size argument of [`vec`]: a fixed size or
        /// a range of sizes.
        pub trait IntoSizeRange {
            /// Draws a concrete length.
            fn pick_len(&self, rng: &mut StdRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick_len(&self, _rng: &mut StdRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn pick_len(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn pick_len(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy for `Vec<T>` with element strategy `S`.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = self.len.pick_len(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Vector of values from `element`, sized by `len` (a `usize` or a
        /// range of `usize`).
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

pub mod prelude {
    //! Mirror of `proptest::prelude` for glob imports.

    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Per-block configuration accepted by `#![proptest_config(...)]` inside
/// [`proptest!`]. Only the case count is meaningful in the shim.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property in the block runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: CASES as u32,
        }
    }
}

/// Runs the body of one property over [`CASES`] seeded cases.
///
/// The body closure returns `false` when a `prop_assume!` rejected the
/// case; rejected cases are not counted against the case budget (up to a
/// global retry cap, so a never-satisfiable assumption cannot hang a test).
pub fn run_cases(test_name: &str, case: impl FnMut(&mut StdRng) -> bool) {
    run_cases_n(CASES, test_name, case);
}

/// [`run_cases`] with an explicit case count (used by
/// `#![proptest_config(...)]` blocks).
pub fn run_cases_n(cases: usize, test_name: &str, mut case: impl FnMut(&mut StdRng) -> bool) {
    let cases = cases.max(1);
    let mut rng = new_test_rng(test_name);
    let mut accepted = 0usize;
    let mut attempts = 0usize;
    let max_attempts = cases * 20;
    while accepted < cases && attempts < max_attempts {
        attempts += 1;
        if case(&mut rng) {
            accepted += 1;
        }
    }
    assert!(
        accepted > 0,
        "proptest shim: `prop_assume!` rejected every generated case of {test_name}"
    );
}

/// Property-test entry macro. Mirrors `proptest::proptest!` for the shapes
/// used in this workspace:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn name(x in 0.0f32..1.0, (a, b) in pair_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases_n(__cfg.cases as usize, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> bool {
                        $body;
                        true
                    })()
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                $crate::run_cases(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    // The body runs in a bool-returning closure so
                    // `prop_assume!` can reject the case via `return false`.
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> bool {
                        $body;
                        true
                    })()
                });
            }
        )*
    };
}

/// Assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Rejects the current case unless `cond` holds (the case is re-drawn, not
/// failed). Only valid directly inside a `proptest!` body, where the body
/// runs in a bool-returning closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return false;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -3.0f32..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_map_compose((a, b) in (0u32..10, 0u32..10).prop_map(|(x, y)| (x, x + y))) {
            prop_assert!(b >= a);
        }

        #[test]
        fn assume_rejects_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
