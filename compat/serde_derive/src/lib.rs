//! `#[derive(Serialize, Deserialize)]` for the in-tree serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build has
//! no `syn`/`quote`). Supports the shapes this workspace actually derives:
//! non-generic named structs, unit structs, tuple structs, and enums with
//! unit / newtype / tuple / struct variants. `#[serde(...)]` attributes are
//! not supported and the workspace does not use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Tuple struct/variant with this many fields.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Splits a token list on top-level commas (commas inside groups are kept).
/// Angle brackets never contain top-level commas at this call's sites
/// because generic arguments always sit inside a field *type*, which we
/// skip as a unit — except `Foo<A, B>` style types, whose commas sit
/// between `<` and `>`; those are tracked with a depth counter.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0usize;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strips leading `#[...]` attributes and a `pub` / `pub(...)` visibility
/// prefix from a token list.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // `#` followed by a bracket group.
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(group_tokens)
        .into_iter()
        .filter_map(|field_tokens| {
            let rest = strip_attrs_and_vis(&field_tokens);
            match rest.first() {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_tuple_fields(group_tokens: &[TokenTree]) -> usize {
    split_top_level_commas(group_tokens)
        .iter()
        .filter(|seg| !strip_attrs_and_vis(seg).is_empty())
        .count()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let rest = strip_attrs_and_vis(&tokens);

    let (kind, rest) = match rest.first() {
        Some(TokenTree::Ident(id)) => (id.to_string(), &rest[1..]),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    let (name, rest) = match rest.first() {
        Some(TokenTree::Ident(id)) => (id.to_string(), &rest[1..]),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    if matches!(rest.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    match kind.as_str() {
        "struct" => {
            let fields = match rest.first() {
                None => Fields::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(parse_tuple_fields(&inner))
                }
                other => panic!("serde shim derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match rest.first() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde shim derive: expected enum body, got {other:?}"),
            };
            let body_tokens: Vec<TokenTree> = body.into_iter().collect();
            let variants = split_top_level_commas(&body_tokens)
                .into_iter()
                .filter_map(|var_tokens| {
                    let rest = strip_attrs_and_vis(&var_tokens);
                    let name = match rest.first() {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        None => return None,
                        other => panic!("serde shim derive: bad enum variant {other:?}"),
                    };
                    let fields = match rest.get(1) {
                        None => Fields::Unit,
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            Fields::Named(parse_named_fields(&inner))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            Fields::Tuple(parse_tuple_fields(&inner))
                        }
                        other => panic!("serde shim derive: unexpected variant body {other:?}"),
                    };
                    Some(Variant { name, fields })
                })
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation (string-built, then parsed back into a TokenStream)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Arr(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => {
                    let items: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Obj(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Value::Arr(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                ))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Value::Obj(vec![{}]))]),",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("let _ = __v; Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "let __items = __v.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}\"))?;\n\
                         if __items.len() != {n} {{ return Err(::serde::DeError::new(\"wrong tuple arity for {name}\")); }}\n\
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let items: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::get_field(__fields, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let __fields = __v.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}\"))?;\n\
                         Ok({name} {{ {} }})",
                        items.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            // Unit variants arrive as strings; data variants as single-key
            // objects.
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __items = __payload.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array payload for {name}::{vn}\"))?;\n\
                                     if __items.len() != {n} {{ return Err(::serde::DeError::new(\"wrong arity for {name}::{vn}\")); }}\n\
                                     return Ok({name}::{vn}({}));\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::get_field(__inner, \"{f}\")?)?"
                                ))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __inner = __payload.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object payload for {name}::{vn}\"))?;\n\
                                     return Ok({name}::{vn} {{ {} }});\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let Some(__s) = __v.as_str() {{\n\
                             match __s {{\n{unit}\n_ => {{}}\n}}\n\
                         }}\n\
                         if let Some(__fields) = __v.as_object() {{\n\
                             if __fields.len() == 1 {{\n\
                                 let (__tag, __payload) = (&__fields[0].0, &__fields[0].1);\n\
                                 let _ = __payload;\n\
                                 match __tag.as_str() {{\n{data}\n_ => {{}}\n}}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::DeError::new(\"no matching variant of {name}\"))\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n")
            )
        }
    }
}

/// Derives the shim `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive: generated Serialize impl must parse")
}

/// Derives the shim `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive: generated Deserialize impl must parse")
}
