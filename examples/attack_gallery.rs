//! Attack gallery: every implemented evasion attack against one digit,
//! with ASCII renderings of the perturbations and a distortion table.
//!
//! ```text
//! cargo run --release --example attack_gallery
//! ```

use dcn_attacks::{
    CwL0, CwL2, CwLinf, DeepFool, DistanceMetric, Fgsm, Igsm, Jsma, Lbfgs, TargetedAttack,
    UntargetedAttack,
};
use dcn_core::models;
use dcn_data::{synth_mnist, SynthConfig};
use dcn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ascii(img: &Tensor) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let (h, w) = (28, 28);
    let mut out = String::new();
    for y in (0..h).step_by(2) {
        for x in 0..w {
            let v = img.data()[y * w + x] + 0.5;
            let idx = ((v * (SHADES.len() - 1) as f32).round() as usize).min(SHADES.len() - 1);
            out.push(SHADES[idx] as char);
        }
        out.push('\n');
    }
    out
}

fn diff_map(a: &Tensor, b: &Tensor) -> Tensor {
    // Perturbation magnitude, rescaled into [-0.5, 0.5] for rendering.
    let d = a.zip(b, |x, y| (x - y).abs()).unwrap();
    let max = d.max().unwrap().max(1e-6);
    d.map(|v| v / max - 0.5)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(5);
    println!("training the target CNN…");
    let train = synth_mnist(1500, &SynthConfig::default(), &mut rng);
    let test = synth_mnist(100, &SynthConfig::default(), &mut rng);
    let net = models::train_classifier(models::mnist_cnn(&mut rng)?, &train, 6, 0.002, &mut rng)?;

    let x = test.example(0)?;
    let logits = net.logits_one(&x)?;
    let label = logits.argmax()?;
    // Attack toward the runner-up class — the nearest decision boundary,
    // where every attack family has a fair chance within its budget.
    let target = logits
        .data()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != label)
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("at least two classes");
    println!("\nbenign example (classified {label}, attacking toward {target}):\n{}", ascii(&x));

    let targeted: Vec<(&str, Box<dyn TargetedAttack>)> = vec![
        ("L-BFGS", Box::new(Lbfgs::new())),
        ("FGSM", Box::new(Fgsm::new(0.3))),
        ("IGSM", Box::new(Igsm::new(0.3, 0.03, 25))),
        ("JSMA", Box::new(Jsma::new(1.0, 0.15))),
        ("CW-L0", Box::new(CwL0::new(0.0))),
        ("CW-L2", Box::new(CwL2::new(0.0))),
        ("CW-Linf", Box::new(CwLinf::new(0.0))),
    ];

    println!("{:<10} {:>8} {:>8} {:>8} {:>9}", "attack", "L0(px)", "L2", "Linf", "label");
    println!("{}", "-".repeat(48));
    let mut gallery: Vec<(String, Tensor)> = Vec::new();
    for (name, attack) in &targeted {
        match attack.run_targeted(&net, &x, target)? {
            Some(adv) => {
                println!(
                    "{:<10} {:>8.0} {:>8.3} {:>8.3} {:>9}",
                    name,
                    DistanceMetric::L0.measure(&x, &adv)?,
                    DistanceMetric::L2.measure(&x, &adv)?,
                    DistanceMetric::Linf.measure(&x, &adv)?,
                    net.predict_one(&adv)?,
                );
                gallery.push((name.to_string(), adv));
            }
            None => println!("{:<10} {:>8}", name, "failed"),
        }
    }
    // DeepFool is untargeted by nature.
    if let Some(adv) = DeepFool::default().run_untargeted(&net, &x)? {
        println!(
            "{:<10} {:>8.0} {:>8.3} {:>8.3} {:>9}",
            "DeepFool",
            DistanceMetric::L0.measure(&x, &adv)?,
            DistanceMetric::L2.measure(&x, &adv)?,
            DistanceMetric::Linf.measure(&x, &adv)?,
            net.predict_one(&adv)?,
        );
        gallery.push(("DeepFool".into(), adv));
    }

    // Show how differently the metrics distribute the perturbation.
    for name in ["JSMA", "CW-L2", "CW-Linf"] {
        if let Some((_, adv)) = gallery.iter().find(|(n, _)| n == name) {
            println!("\n{name} perturbation (normalized magnitude):");
            println!("{}", ascii(&diff_map(&x, adv)));
        }
    }
    Ok(())
}
