//! Quickstart: train a digit classifier, break it with CW-L2, fix it with
//! a Detector-Corrector Network.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dcn_attacks::{untargeted_min_distortion, CwL2};
use dcn_core::{models, Corrector, Dcn, DcnVerdict, Detector, DetectorConfig};
use dcn_data::{synth_mnist, SynthConfig};
use dcn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Collect pipeline metrics for the whole run (same switch as DCN_OBS=1)
    // so the closing summary shows the paper's cost asymmetry: benign
    // queries pay 1 forward pass, corrected ones 1 + m.
    dcn_obs::set_enabled(true);
    let mut rng = StdRng::seed_from_u64(1);

    // 1. A standard DNN on the synthetic digit task.
    println!("[1/4] training the base CNN…");
    let train = synth_mnist(1500, &SynthConfig::default(), &mut rng);
    let test = synth_mnist(300, &SynthConfig::default(), &mut rng);
    let net = models::train_classifier(models::mnist_cnn(&mut rng)?, &train, 6, 0.002, &mut rng)?;
    let acc = models::accuracy_on(&net, &test)?;
    println!("      test accuracy: {:.1}%", acc * 100.0);

    // 2. An attacker crafts a minimum-distortion adversarial example
    //    (the paper's untargeted reduction: try all targets, keep the best).
    println!("[2/4] running the CW-L2 attack…");
    let x = test.example(0)?;
    let label = net.predict_one(&x)?;
    let adv = untargeted_min_distortion(&CwL2::new(0.0), &net, &x)?
        .expect("CW-L2 reliably beats an undefended network");
    println!(
        "      benign label {label} → adversarial label {} (L2 distortion {:.2})",
        net.predict_one(&adv)?,
        adv.dist_l2(&x)?
    );

    // 3. Train the detector on adversarial logits (the paper's protocol).
    println!("[3/4] training the logit detector…");
    let seeds: Vec<Tensor> = (1..21).map(|i| test.example(i).unwrap()).collect();
    let detector = Detector::train_against(
        &net,
        &seeds,
        &CwL2::new(0.0),
        &DetectorConfig::default(),
        &mut rng,
    )?;

    // 4. Assemble the DCN and classify both inputs.
    println!("[4/4] assembling the DCN…");
    let dcn = Dcn::new(net, detector, Corrector::mnist_default());
    let (benign_label, benign_verdict) = dcn.classify_with_verdict(&x, &mut rng)?;
    let (adv_label, adv_verdict) = dcn.classify_with_verdict(&adv, &mut rng)?;
    println!(
        "      benign input  → {benign_label} ({})",
        match benign_verdict {
            DcnVerdict::PassedThrough => "passed through, 1 forward pass",
            DcnVerdict::Corrected => "corrected",
        }
    );
    println!(
        "      attacked input → {adv_label} ({})",
        match adv_verdict {
            DcnVerdict::PassedThrough => "missed by the detector!",
            DcnVerdict::Corrected => "detected and corrected",
        }
    );
    assert_eq!(benign_label, label);
    if adv_label == label {
        println!("      the DCN recovered the true label.");
    }

    println!("\nobservability summary:");
    println!("{}", dcn_obs::snapshot("quickstart").render());
    if std::env::var_os("DCN_OBS_JSON").is_some() {
        if let Some(path) = dcn_obs::maybe_export("quickstart") {
            println!("snapshot written to {}", path.display());
        }
    }
    Ok(())
}
