//! Defensive distillation vs DCN under the CW threat model — the paper's
//! central comparison (§5.3), at example scale.
//!
//! Distillation hardens a network against gradient-saturation attacks but
//! Carlini & Wagner showed their logit-space attacks still win 100% of the
//! time. DCN, by contrast, leaves the network alone and catches the attack
//! at the output.
//!
//! ```text
//! cargo run --release --example distill_vs_dcn
//! ```

use dcn_attacks::{CwL2, TargetedAttack};
use dcn_core::{
    distill, models, Corrector, Dcn, Detector, DetectorConfig, DistillConfig,
};
use dcn_data::{synth_mnist, SynthConfig};
use dcn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Same switch as DCN_OBS=1: the closing summary table shows where the
    // forward passes went (distillation trains two nets; DCN only pays the
    // corrector's 1 + m on flagged queries).
    dcn_obs::set_enabled(true);
    let mut rng = StdRng::seed_from_u64(17);
    let train = synth_mnist(1500, &SynthConfig::default(), &mut rng);
    let test = synth_mnist(200, &SynthConfig::default(), &mut rng);

    println!("[1/3] training the standard network…");
    let net = models::train_classifier(models::mnist_cnn(&mut rng)?, &train, 6, 0.002, &mut rng)?;

    println!("[2/3] training the defensively distilled network (T = 100)…");
    let distilled = distill(
        models::mnist_cnn(&mut rng)?,
        models::mnist_cnn(&mut rng)?,
        &train,
        &DistillConfig {
            temperature: 100.0,
            epochs: 6,
            learning_rate: 0.002,
            batch_size: 32,
        },
        &mut rng,
    )?;
    println!(
        "      accuracies — standard {:.1}%, distilled {:.1}%",
        models::accuracy_on(&net, &test)? * 100.0,
        models::accuracy_on(&distilled, &test)? * 100.0
    );

    println!("[3/3] attacking both with CW-L2 (κ = 0)…");
    let attack = CwL2::new(0.0);
    let mut beaten_standard = 0;
    let mut beaten_distilled = 0;
    let mut recovered_by_dcn = 0;
    let n_seeds = 5;

    // The DCN guarding the standard network.
    let det_seeds: Vec<Tensor> = (n_seeds..n_seeds + 15)
        .map(|i| test.example(i).unwrap())
        .collect();
    let detector = Detector::train_against(
        &net,
        &det_seeds,
        &attack,
        &DetectorConfig::default(),
        &mut rng,
    )?;
    let dcn = Dcn::new(net.clone(), detector, Corrector::mnist_default());

    for i in 0..n_seeds {
        let x = test.example(i)?;
        let label = net.predict_one(&x)?;
        let target = (label + 4) % 10;
        if let Some(adv) = attack.run_targeted(&net, &x, target)? {
            beaten_standard += 1;
            if dcn.classify(&adv, &mut rng)? == label {
                recovered_by_dcn += 1;
            }
        }
        // Attack the distilled network *directly* — Carlini's point was that
        // distillation only stops attacks that go through the softmax.
        let dl = distilled.predict_one(&x)?;
        let dt = (dl + 4) % 10;
        if attack.run_targeted(&distilled, &x, dt)?.is_some() {
            beaten_distilled += 1;
        }
    }
    println!("\nresults over {n_seeds} seeds:");
    println!("  CW-L2 beat the standard network  {beaten_standard}/{n_seeds}");
    println!("  CW-L2 beat the distilled network {beaten_distilled}/{n_seeds}  (distillation does not stop CW)");
    println!("  DCN recovered the true label     {recovered_by_dcn}/{beaten_standard}");

    println!("\nobservability summary:");
    println!("{}", dcn_obs::snapshot("distill_vs_dcn").render());
    if std::env::var_os("DCN_OBS_JSON").is_some() {
        if let Some(path) = dcn_obs::maybe_export("distill_vs_dcn") {
            println!("snapshot written to {}", path.display());
        }
    }
    Ok(())
}
