//! The paper's motivating scenario (§1): an adversarial stop sign.
//!
//! A self-driving pipeline classifies road signs; an attacker perturbs a
//! "stop" sign so the base network reads it as "yield" while a human still
//! sees a stop sign (the distortion is tiny). A DCN in front of the
//! controller detects the attack and recovers "stop".
//!
//! The sign classifier is played by the synthetic digit task: class 7 acts
//! as STOP and class 1 as YIELD.
//!
//! ```text
//! cargo run --release --example stop_sign
//! ```

use dcn_attacks::{CwL2, DistanceMetric, TargetedAttack};
use dcn_core::{models, Corrector, Dcn, DcnVerdict, Detector, DetectorConfig};
use dcn_data::{synth_mnist, SynthConfig};
use dcn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const STOP: usize = 7;
const YIELD: usize = 1;

fn sign_name(class: usize) -> &'static str {
    match class {
        STOP => "STOP",
        YIELD => "YIELD",
        _ => "(other sign)",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    println!("training the sign classifier…");
    let train = synth_mnist(1500, &SynthConfig::default(), &mut rng);
    let test = synth_mnist(300, &SynthConfig::default(), &mut rng);
    let net = models::train_classifier(models::mnist_cnn(&mut rng)?, &train, 6, 0.002, &mut rng)?;

    // A stop sign the classifier reads correctly.
    let stop_idx = (0..test.len())
        .find(|&i| test.labels()[i] == STOP && net.predict_one(&test.example(i).unwrap()).unwrap() == STOP)
        .expect("a correctly classified stop sign");
    let stop = test.example(stop_idx)?;
    println!("camera frame: classifier says {}", sign_name(net.predict_one(&stop)?));

    // The attacker stickers the sign: targeted CW-L2 toward YIELD.
    println!("\nattacker perturbs the sign toward YIELD…");
    let adv = CwL2::new(0.0)
        .run_targeted(&net, &stop, YIELD)?
        .expect("CW-L2 beats the undefended classifier");
    let l2 = DistanceMetric::L2.measure(&stop, &adv)?;
    let linf = DistanceMetric::Linf.measure(&stop, &adv)?;
    println!(
        "undefended classifier now says {} (L2 {:.2}, max pixel change {:.3} — invisible to a driver)",
        sign_name(net.predict_one(&adv)?),
        l2,
        linf
    );

    // The safety team deploys a DCN in front of the planner.
    println!("\ndeploying the DCN…");
    let seeds: Vec<Tensor> = (0..20)
        .filter(|&i| i != stop_idx)
        .map(|i| test.example(i).unwrap())
        .collect();
    let detector = Detector::train_against(
        &net,
        &seeds,
        &CwL2::new(0.0),
        &DetectorConfig::default(),
        &mut rng,
    )?;
    let dcn = Dcn::new(net, detector, Corrector::mnist_default());

    let (label, verdict) = dcn.classify_with_verdict(&adv, &mut rng)?;
    match verdict {
        DcnVerdict::Corrected => println!(
            "DCN: detector flagged the frame; corrector voted {} — the car stops.",
            sign_name(label)
        ),
        DcnVerdict::PassedThrough => println!(
            "DCN: frame passed through as {} (detector miss).",
            sign_name(label)
        ),
    }
    // And the benign frame still flows through at base cost.
    let (benign_label, benign_verdict) = dcn.classify_with_verdict(&stop, &mut rng)?;
    println!(
        "clean frame: {} via {} forward pass(es).",
        sign_name(benign_label),
        dcn.cost_of(benign_verdict)
    );
    Ok(())
}
