#!/usr/bin/env bash
# Panic-freedom gate for the serving path.
#
# Thin wrapper over the workspace linter: the token-level engine in
# crates/lint replaced the old awk/sed/grep pipeline (which missed panic
# sites after a non-trailing `#[cfg(test)]` module and miscounted sites
# hidden in string literals). The allowlist now lives at
# ci/lint/panic_allowlist.txt with the same shrink-only semantics.

set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run --release -q -p dcn-lint -- check --rule panic-free "$@"
