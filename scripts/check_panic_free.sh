#!/usr/bin/env bash
# Panic-freedom gate for the serving path.
#
# Counts potential panic sites (`unwrap`, `expect`, `panic!`, `unreachable!`,
# `todo!`, `unimplemented!`) in non-test code of the serving-path crates and
# compares them against ci/panic_allowlist.txt. The allowlist is SHRINK-ONLY:
#
#   * a file with more sites than its allowance fails the build — new panic
#     sites must be rewritten as typed errors instead;
#   * a file with fewer sites than its allowance also fails — lower the
#     allowance so the improvement can never regress silently.
#
# Doc comments and the trailing `#[cfg(test)]` module of each file are
# excluded (by repo convention the test module is last in the file).

set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST=ci/panic_allowlist.txt
CRATES=(tensor nn data core fault obs cli)
PATTERN='\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(|todo!\(|unimplemented!\('

if [[ ! -f "$ALLOWLIST" ]]; then
    echo "missing $ALLOWLIST" >&2
    exit 1
fi

declare -A allowed
while read -r count file _; do
    [[ -z "${count:-}" || "$count" == \#* ]] && continue
    allowed["$file"]=$count
done < "$ALLOWLIST"

strip_tests_and_comments() {
    awk '/^[[:space:]]*#\[cfg\(test\)\]/{exit} {print}' "$1" | sed 's@//.*@@'
}

fail=0
seen=()
for crate in "${CRATES[@]}"; do
    while IFS= read -r src; do
        hits=$(strip_tests_and_comments "$src" | grep -E -c "$PATTERN" || true)
        allowance=${allowed["$src"]:-0}
        if [[ "$hits" -gt "$allowance" ]]; then
            echo "FAIL $src: $hits panic sites, allowance is $allowance" >&2
            strip_tests_and_comments "$src" | grep -En "$PATTERN" | sed 's/^/       /' >&2
            fail=1
        elif [[ "$hits" -lt "$allowance" ]]; then
            echo "FAIL $src: $hits panic sites but allowance is $allowance —" \
                 "shrink the allowance in $ALLOWLIST" >&2
            fail=1
        fi
        [[ "$allowance" -gt 0 ]] && seen+=("$src")
    done < <(find "crates/$crate/src" -name '*.rs' | sort)
done

# Entries for files that no longer exist keep dead allowances around.
for file in "${!allowed[@]}"; do
    if [[ ! -f "$file" ]]; then
        echo "FAIL $ALLOWLIST lists missing file $file" >&2
        fail=1
    fi
done

if [[ "$fail" -ne 0 ]]; then
    echo "panic-freedom check failed" >&2
    exit 1
fi
echo "panic-freedom check passed ($(IFS=,; echo "${CRATES[*]}"))"
