#!/usr/bin/env bash
# SIGKILL-a-worker-mid-epoch leg for the distributed CI job.
#
# Runs the dcn-ps orchestrator (in-process server + worker child
# processes), SIGKILLs one worker partway through training, waits for
# the respawned incarnation to finish the run, and asserts the saved
# model is byte-identical to the single-process reference the caller
# already produced.
#
# Must run as a script FILE, not an inline `bash -c` string: an inline
# command's own cmdline contains this text, so any pgrep pattern that
# names the worker would match (and kill) the monitoring shell itself.
# The bracket trick in 'dcn-ps wo[r]ker' keeps the pattern from
# matching its own pgrep invocation for the same reason.
#
# Usage: ps_kill_leg.sh <reference-model.json> <output-model.json>

set -euo pipefail
cd "$(dirname "$0")/.."

REF=${1:?usage: ps_kill_leg.sh <reference-model.json> <output-model.json>}
OUT=${2:?usage: ps_kill_leg.sh <reference-model.json> <output-model.json>}
BIN=target/release/dcn-ps
LOG=$(mktemp)

rm -f "$OUT"
# n=4096 x 2 epochs runs ~4-6s; the kill at 2.5s lands mid-run.
"$BIN" train --task mnist --n 4096 --epochs 2 --seed 7 --workers 2 \
    --straggler-ms 500 --out "$OUT" >"$LOG" 2>&1 &
ORCH=$!

sleep 2.5
W=$(pgrep -f 'dcn-ps wo[r]ker' | head -1 || true)
if [ -z "$W" ]; then
    echo "no live worker to kill — run finished too fast or never started"
    cat "$LOG"
    exit 1
fi
kill -9 "$W"
echo "SIGKILLed worker pid $W mid-epoch"

wait "$ORCH"
echo "orchestrator exit: $?"
grep -E 'respawning|workers_lost' "$LOG" || true

cmp "$REF" "$OUT"
echo "model after SIGKILL + respawn is bitwise identical to the single-process run"
